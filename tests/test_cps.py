"""Tests for the CPS language: syntax, transform, parser, program."""

import pytest

from repro.errors import CPSSyntaxError
from repro.cps.parser import parse_cps, parse_cps_call
from repro.cps.pretty import pretty_cps
from repro.cps.program import Program, label_maximum
from repro.cps.syntax import (
    AppCall, FixCall, HaltCall, IfCall, Lam, LamKind, Lit, PrimCall,
    Ref, free_vars_of_call, free_vars_of_lam, iter_calls, iter_lams,
    term_count,
)
from repro.scheme.cps_transform import compile_program, cps_convert
from repro.scheme.desugar import desugar_expression
from repro.scheme.alpha import alpha_rename


class TestTransformShape:
    def test_atomic_program(self):
        program = compile_program("42")
        assert isinstance(program.root, HaltCall)
        assert program.root.arg == Lit(42)

    def test_user_lambda_gets_cont_param(self):
        program = compile_program("((lambda (x) x) 1)")
        user_lams = program.user_lams
        assert len(user_lams) == 1
        assert len(user_lams[0].params) == 2  # x plus the continuation

    def test_let_becomes_cont_binding_not_call(self):
        # A let must not consume user-call context: its binder is a
        # CONT lambda.
        program = compile_program("(let ((x 1)) x)")
        assert all(lam.is_cont for lam in program.lams)

    def test_letrec_becomes_fix(self):
        program = compile_program(
            "(letrec ((f (lambda (n) n))) (f 1))")
        fixes = [call for call in program.calls
                 if isinstance(call, FixCall)]
        assert len(fixes) == 1
        assert fixes[0].bindings[0][1].is_user

    def test_if_becomes_ifcall(self):
        program = compile_program("(if #t 1 2)")
        assert any(isinstance(call, IfCall) for call in program.calls)

    def test_primitive_becomes_primcall(self):
        program = compile_program("(+ 1 2)")
        prims = [call for call in program.calls
                 if isinstance(call, PrimCall)]
        assert len(prims) == 1
        assert prims[0].op == "+"

    def test_nontail_if_binds_join_point(self):
        # (f (if c 1 2)) must not duplicate f's continuation.
        program = compile_program(
            "((lambda (v) v) (if #t 1 2))")
        # no lambda node may appear twice — Program validates labels,
        # so constructing it is already the assertion; sanity check:
        labels = [lam.label for lam in program.lams]
        assert len(labels) == len(set(labels))

    def test_labels_unique_across_everything(self):
        program = compile_program(
            "(define (f x) (if x (f (- x 1)) 0)) (f 3)")
        labels = ([call.label for call in program.calls]
                  + [lam.label for lam in program.lams])
        assert len(labels) == len(set(labels))

    def test_evaluation_order_left_to_right(self):
        # CPS conversion shouldn't reorder argument evaluation; the
        # concrete machine would diverge on (error) evaluated eagerly.
        from repro.concrete import run_shared
        program = compile_program(
            "((lambda (a b) (+ a b)) (+ 1 2) (* 3 4))")
        assert run_shared(program).value == 15


class TestProgramValidation:
    def test_open_program_rejected(self):
        core = desugar_expression("(lambda (x) y)")
        with pytest.raises(CPSSyntaxError):
            cps_convert(alpha_rename(core))

    def test_duplicate_binders_rejected(self):
        core = desugar_expression("(lambda (x) (lambda (x) x))")
        with pytest.raises(Exception):
            cps_convert(core)  # check_unique_binders fires

    def test_unknown_primitive_rejected(self):
        with pytest.raises(CPSSyntaxError):
            parse_cps("(%frobnicate 1 (cont (r) (%halt r)))")

    def test_stats(self):
        program = compile_program("((lambda (x) x) 1)")
        stats = program.stats()
        assert stats["user_lambdas"] == 1
        assert stats["terms"] == term_count(program.root)
        assert stats["calls"] == len(list(iter_calls(program.root)))


class TestFreeVars:
    def test_lam_free_vars(self):
        program = parse_cps(
            "((lambda (x k) (k x)) 1 (cont (r) (%halt r)))")
        lam = program.user_lams[0]
        assert free_vars_of_lam(lam) == frozenset()

    def test_capture(self):
        call = parse_cps_call(
            "((lambda (x k) (k (lambda (y k2) (k2 x)))) "
            " 1 (cont (r) (%halt r)))")
        inner = [lam for lam in iter_lams(call)
                 if lam.is_user and "y" in lam.params]
        assert free_vars_of_lam(inner[0]) == {"x"}

    def test_fix_scoping(self):
        call = parse_cps_call(
            "(%fix ((f (lambda (n k) (f n k)))) (f 1 (cont (r) "
            "(%halt r))))")
        assert free_vars_of_call(call) == frozenset()


class TestCPSParser:
    def test_user_and_cont_lambdas(self):
        program = parse_cps(
            "((lambda (x k) (k x)) 7 (cont (r) (%halt r)))")
        assert len(program.user_lams) == 1
        assert len(program.cont_lams) == 1

    def test_greek_letters(self):
        program = parse_cps("((λ (x k) (k x)) 7 (κ (r) (%halt r)))")
        assert len(program.user_lams) == 1

    def test_if_call(self):
        call = parse_cps_call("(%if x (%halt 1) (%halt 2))")
        assert isinstance(call, IfCall)

    def test_prim_call(self):
        call = parse_cps_call("(%cons 1 2 (cont (p) (%halt p)))")
        assert isinstance(call, PrimCall)
        assert call.op == "cons"

    def test_literals(self):
        call = parse_cps_call("(%halt '(a b))")
        assert isinstance(call.arg, Lit)

    def test_malformed_rejected(self):
        with pytest.raises(CPSSyntaxError):
            parse_cps_call("(%if x (%halt 1))")

    def test_fix_requires_user_lambda(self):
        with pytest.raises(CPSSyntaxError):
            parse_cps_call("(%fix ((f (cont (x) (%halt x)))) (%halt f))")


class TestPretty:
    def test_roundtrip_through_parser(self):
        source = ("((lambda (x k) (%cons x x (cont (p) (k p)))) 3 "
                  "(cont (r) (%halt r)))")
        program = parse_cps(source)
        text = pretty_cps(program.root)
        again = parse_cps(text)
        assert again.stats() == program.stats()

    def test_labels_shown_on_request(self):
        program = parse_cps("(%halt 1)")
        assert "@0" in pretty_cps(program.root, show_labels=True)

    def test_compiled_programs_roundtrip(self):
        program = compile_program(
            "(define (f x) (if (= x 0) 1 (f (- x 1)))) (f 2)")
        again = parse_cps(pretty_cps(program.root))
        assert again.stats() == program.stats()


class TestTermCount:
    def test_grows_with_program(self):
        small = compile_program("1")
        large = compile_program("(+ 1 (+ 2 (+ 3 4)))")
        assert small.term_count() < large.term_count()

    def test_label_maximum(self):
        program = compile_program("(+ 1 2)")
        assert label_maximum(program.root) >= 0
