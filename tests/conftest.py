"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.benchsuite import SUITE
from repro.scheme.cps_transform import compile_program


@pytest.fixture(autouse=True)
def _memory_codegen_cache():
    """Keep the codegen default cache memory-only during tests.

    Analyses run with codegen on by default; without this every test
    process would write generated modules into the developer's real
    ``~/.cache/repro/codegen``.  Memory-only keeps runs hermetic
    while still exercising the cache lookup path.  Tests that want a
    disk-backed cache install their own via
    :func:`repro.analysis.codegen.set_default_codegen_cache`.
    """
    from repro.analysis.codegen import set_default_codegen_cache
    from repro.cache import CodegenCache
    set_default_codegen_cache(CodegenCache())
    yield
    set_default_codegen_cache(None)


@pytest.fixture(scope="session")
def suite_compiled():
    """The §6.2 suite, compiled once per test session."""
    return {bench.name: bench.compile() for bench in SUITE}


@pytest.fixture(scope="session")
def small_programs():
    """A pool of small interesting programs, compiled once."""
    sources = {
        "const": "42",
        "identity": "((lambda (x) x) 7)",
        "fact": ("(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))"
                 " (fact 5)"),
        "even-odd": """
            (define (even? n) (if (= n 0) #t (odd? (- n 1))))
            (define (odd? n) (if (= n 0) #f (even? (- n 1))))
            (even? 10)
        """,
        "adders": """
            (define (make-adder n) (lambda (x) (+ x n)))
            (cons ((make-adder 1) 10) ((make-adder 2) 20))
        """,
        "church": """
            (define zero (lambda (f) (lambda (x) x)))
            (define (succ n) (lambda (f) (lambda (x) (f ((n f) x)))))
            (define (church->int n) ((n (lambda (k) (+ k 1))) 0))
            (church->int (succ (succ (succ zero))))
        """,
        "list-ops": """
            (define (len xs) (if (null? xs) 0 (+ 1 (len (cdr xs)))))
            (len (cons 1 (cons 2 (cons 3 '()))))
        """,
        "let-shadow": """
            (let ((x 1))
              (let ((x (+ x 1)))
                (let ((x (* x 3))) x)))
        """,
    }
    return {name: (source, compile_program(source))
            for name, source in sources.items()}
