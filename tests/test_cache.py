"""The persistent result cache: hits, misses, bad entries, CLI."""

from __future__ import annotations

import json

import pytest

from repro.cache import (
    CACHE_SCHEMA_VERSION, CacheStats, ResultCache, cache_key,
    default_cache_dir, open_cache,
)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key("(f 1)", "kcfa", 1) == \
            cache_key("(f 1)", "kcfa", 1)

    def test_source_sensitivity(self):
        assert cache_key("(f 1)", "kcfa", 1) != \
            cache_key("(f 2)", "kcfa", 1)

    def test_analysis_and_parameter_sensitivity(self):
        base = cache_key("(f 1)", "kcfa", 1)
        assert cache_key("(f 1)", "mcfa", 1) != base
        assert cache_key("(f 1)", "kcfa", 2) != base

    def test_option_sensitivity_and_order_insensitivity(self):
        with_opts = cache_key("(f 1)", "kcfa", 1, {"a": 1, "b": 2})
        assert with_opts != cache_key("(f 1)", "kcfa", 1)
        assert with_opts == cache_key("(f 1)", "kcfa", 1,
                                      {"b": 2, "a": 1})


class TestHitMiss:
    def test_miss_then_hit(self, cache):
        key = cache_key("src", "kcfa", 1)
        assert cache.get(key) is None
        cache.put(key, {"answer": 42})
        assert cache.get(key) == {"answer": 42}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.writes == 1

    def test_distinct_keys_do_not_collide(self, cache):
        cache.put(cache_key("a", "kcfa", 1), {"v": "a"})
        cache.put(cache_key("b", "kcfa", 1), {"v": "b"})
        assert cache.get(cache_key("a", "kcfa", 1)) == {"v": "a"}
        assert len(cache) == 2

    def test_put_overwrites(self, cache):
        key = cache_key("src", "kcfa", 1)
        cache.put(key, {"v": 1})
        cache.put(key, {"v": 2})
        assert cache.get(key) == {"v": 2}
        assert len(cache) == 1


class TestBadEntries:
    def test_corrupt_file_is_a_miss(self, cache):
        key = cache_key("src", "kcfa", 1)
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        assert cache.stats.rejected == 1

    def test_truncated_file_is_a_miss(self, cache):
        key = cache_key("src", "kcfa", 1)
        cache.put(key, {"v": 1})
        text = cache.path_for(key).read_text(encoding="utf-8")
        cache.path_for(key).write_text(text[:len(text) // 2],
                                       encoding="utf-8")
        assert cache.get(key) is None

    def test_version_mismatch_is_a_miss(self, cache):
        key = cache_key("src", "kcfa", 1)
        cache.path_for(key).write_text(json.dumps({
            "schema": CACHE_SCHEMA_VERSION + 1, "key": key,
            "payload": {"v": 1}}), encoding="utf-8")
        assert cache.get(key) is None
        assert cache.stats.rejected == 1

    def test_foreign_json_is_a_miss(self, cache):
        key = cache_key("src", "kcfa", 1)
        cache.path_for(key).write_text('["not", "an", "entry"]',
                                       encoding="utf-8")
        assert cache.get(key) is None

    def test_wrong_key_in_entry_is_a_miss(self, cache):
        key = cache_key("src", "kcfa", 1)
        other = cache_key("other", "kcfa", 1)
        cache.path_for(key).write_text(json.dumps({
            "schema": CACHE_SCHEMA_VERSION, "key": other,
            "payload": {"v": 1}}), encoding="utf-8")
        assert cache.get(key) is None

    def test_prune_removes_stale_entries(self, cache):
        good = cache_key("src", "kcfa", 1)
        cache.put(good, {"v": 1})
        stale = cache_key("stale", "kcfa", 1)
        cache.path_for(stale).write_text(json.dumps({
            "schema": CACHE_SCHEMA_VERSION - 1, "key": stale,
            "payload": {}}), encoding="utf-8")
        junk = cache_key("junk", "kcfa", 1)
        cache.path_for(junk).write_text("junk", encoding="utf-8")
        assert cache.prune() == 2
        assert cache.get(good) == {"v": 1}
        assert cache.stats.pruned == 2

    def test_foreign_files_are_not_entries(self, cache):
        """Satellite regression: a foreign or in-progress file must
        not inflate len() and prune() must never delete it."""
        good = cache_key("src", "kcfa", 1)
        cache.put(good, {"v": 1})
        foreign = cache.directory / "notes.json"
        foreign.write_text("not ours", encoding="utf-8")
        partial = cache.directory / ".tmp-abc123.json"
        partial.write_text("{", encoding="utf-8")
        shouty = cache.directory / f"{'A' * 64}.json"  # wrong case
        shouty.write_text("{}", encoding="utf-8")
        assert len(cache) == 1
        assert cache.prune() == 0
        assert foreign.exists() and partial.exists() and shouty.exists()
        assert cache.stats.pruned == 0


class TestOpenCache:
    def test_disabled_returns_none(self):
        assert open_cache(None, False) is None

    def test_enabled_with_dir(self, tmp_path):
        cache = open_cache(str(tmp_path / "c"), True)
        assert cache is not None
        assert cache.directory == tmp_path / "c"

    def test_default_dir_shape(self):
        assert default_cache_dir().name == "repro"

    def test_stats_dict(self):
        stats = CacheStats(hits=1, misses=2, writes=3, rejected=4,
                           pruned=5)
        assert stats.as_dict() == {"hits": 1, "misses": 2,
                                   "writes": 3, "rejected": 4,
                                   "pruned": 5}


class TestJobKeyAudit:
    """The cache key must cover every result-affecting option."""

    def test_every_result_affecting_option_changes_the_key(self):
        from dataclasses import replace
        from repro.service.jobs import JobSpec, job_cache_key
        base = JobSpec(source="(f 1)")
        for field_name, other in [("source", "(f 2)"),
                                  ("analysis", "kcfa"),
                                  ("context", 2),
                                  ("simplify", True),
                                  ("report", "flow"),
                                  ("values", "plain"),
                                  ("specialize", False),
                                  ("codegen", False)]:
            changed = replace(base, **{field_name: other})
            assert job_cache_key(changed) != job_cache_key(base), \
                f"{field_name} is not part of the cache key"

    def test_timeout_is_deliberately_excluded(self):
        from dataclasses import replace
        from repro.service.jobs import JobSpec, job_cache_key
        base = JobSpec(source="(f 1)")
        assert job_cache_key(replace(base, timeout=5.0)) \
            == job_cache_key(base)

    def test_schema_version_is_part_of_the_key(self, monkeypatch):
        before = cache_key("(f 1)", "kcfa", 1)
        monkeypatch.setattr("repro.cache.CACHE_SCHEMA_VERSION",
                            CACHE_SCHEMA_VERSION + 1)
        assert cache_key("(f 1)", "kcfa", 1) != before

    def test_analyze_cli_and_service_share_keys(self):
        """`analyze --cache` entries must be reusable by the server
        (and vice versa): both derive the key from job_cache_key."""
        from repro.service.jobs import JobSpec, job_cache_key
        spec = JobSpec(source="(f 1)", analysis="kcfa", context=1)
        assert job_cache_key(spec) == cache_key(
            "(f 1)", "kcfa", 1,
            {"command": "analyze", "simplify": False,
             "report": "all", "values": "interned",
             "specialize": True, "codegen": True})


class TestValuesDomainRegression:
    """Flipping --values must never return a stale cached result."""

    SOURCE = "(define (id x) x)\n(+ (id 3) (id 4))\n"

    def run_analyze(self, tmp_path, capsys, values, cache_dir):
        from repro.__main__ import main
        src = tmp_path / "p.scm"
        src.write_text(self.SOURCE, encoding="utf-8")
        code = main(["analyze", str(src), "--analysis", "kcfa",
                     "-n", "1", "--values", values,
                     "--cache-dir", str(cache_dir)])
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_flipping_values_is_never_a_stale_hit(self, tmp_path,
                                                  capsys):
        cache_dir = tmp_path / "cache"
        code, interned_out, err = self.run_analyze(
            tmp_path, capsys, "interned", cache_dir)
        assert code == 0 and "(cached result)" not in err
        code, plain_out, err = self.run_analyze(
            tmp_path, capsys, "plain", cache_dir)
        assert code == 0
        assert "(cached result)" not in err, \
            "plain run was served the interned run's cache entry"
        assert len(list(cache_dir.glob("*.json"))) == 2
        # The domains agree on the bytes (the interning theorem) —
        # which is exactly why key separation needs its own test.
        assert plain_out == interned_out
        code, _out, err = self.run_analyze(
            tmp_path, capsys, "plain", cache_dir)
        assert code == 0 and "(cached result)" in err


class TestInflightTable:
    def test_first_join_is_the_leader(self):
        from repro.cache import InflightTable
        table = InflightTable()
        assert table.join("k", "a") is True
        assert table.join("k", "b") is False
        assert table.join("other", "c") is True
        assert table.pending() == 2
        assert table.stats.leaders == 2
        assert table.stats.followers == 1

    def test_complete_pops_everyone_in_order(self):
        from repro.cache import InflightTable
        table = InflightTable()
        table.join("k", "a")
        table.join("k", "b")
        assert table.complete("k") == ["a", "b"]
        assert table.pending() == 0
        assert table.complete("k") == []

    def test_completed_key_restarts_fresh(self):
        from repro.cache import InflightTable
        table = InflightTable()
        table.join("k", "a")
        table.complete("k")
        assert table.join("k", "b") is True

    def test_concurrent_joins_elect_exactly_one_leader(self):
        import threading
        from repro.cache import InflightTable
        table = InflightTable()
        outcomes = []
        barrier = threading.Barrier(16)

        def contender(i):
            barrier.wait(timeout=30)
            outcomes.append(table.join("k", i))

        threads = [threading.Thread(target=contender, args=(i,))
                   for i in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert sum(outcomes) == 1
        assert sorted(table.complete("k")) == list(range(16))
        assert table.stats.followers == 15


class TestAnalyzeCLI:
    SOURCE = "(define (id x) x)\n(+ (id 3) (id 4))\n"

    def run_analyze(self, tmp_path, capsys, *extra):
        from repro.__main__ import main
        src = tmp_path / "p.scm"
        src.write_text(self.SOURCE, encoding="utf-8")
        code = main(["analyze", str(src), "--analysis", "mcfa",
                     "-n", "1", *extra])
        captured = capsys.readouterr()
        return code, captured.out

    def test_cached_output_is_byte_identical(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        code, cold = self.run_analyze(tmp_path, capsys,
                                      "--cache-dir", cache_dir)
        assert code == 0
        code, warm = self.run_analyze(tmp_path, capsys,
                                      "--cache-dir", cache_dir)
        assert code == 0
        assert warm == cold
        code, uncached = self.run_analyze(tmp_path, capsys)
        assert uncached == cold

    def test_cache_dir_is_populated(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        self.run_analyze(tmp_path, capsys, "--cache-dir",
                         str(cache_dir))
        assert list(cache_dir.glob("*.json"))


class TestBenchCLI:
    def test_quick_honors_cache_dir(self, tmp_path, capsys):
        from repro.__main__ import main
        cache_dir = tmp_path / "bench-cache"
        args = ["bench", "--quick", "--serial",
                "--cache-dir", str(cache_dir), "--output", "-"]
        assert main(args) == 0
        capsys.readouterr()
        entries = len(list(cache_dir.glob("*.json")))
        assert entries > 0
        assert main(args) == 0
        err = capsys.readouterr().err
        assert f"cache: {entries} hits, 0 misses" in err

    def test_batch_rows_marked_cached_on_hit(self, tmp_path):
        from repro.benchsuite.runner import BenchTask, run_batch
        from repro.cache import ResultCache
        cache = ResultCache(tmp_path / "c")
        tasks = [BenchTask(program="eta", analysis="zero",
                           parameter=0, timeout=10.0)]
        cold = run_batch(tasks, serial=True, cache=cache)
        assert not cold.rows[0].get("cached")
        warm = run_batch(tasks, serial=True, cache=cache)
        assert warm.rows[0]["cached"] is True
        assert warm.rows[0]["configs"] == cold.rows[0]["configs"]

    def test_timeouts_are_not_cached(self, tmp_path):
        from repro.benchsuite.runner import BenchTask, run_batch
        from repro.cache import ResultCache
        cache = ResultCache(tmp_path / "c")
        tasks = [BenchTask(program="worst9", analysis="kcfa",
                           parameter=1, timeout=0.0001)]
        report = run_batch(tasks, serial=True, cache=cache)
        assert report.rows[0]["status"] == "timeout"
        assert cache.stats.writes == 0

    def test_plain_and_interned_cells_have_distinct_keys(self):
        from repro.benchsuite.runner import BenchTask, _task_cache_key
        interned = BenchTask(program="eta", analysis="kcfa",
                             parameter=1)
        plain = BenchTask(program="eta", analysis="kcfa",
                          parameter=1, values="plain")
        assert _task_cache_key(interned) != _task_cache_key(plain)

    def test_worst_case_programs_resolve(self):
        from repro.benchsuite.runner import (
            BenchTask, build_matrix, task_source,
        )
        tasks = build_matrix(["worst4"], ["kcfa", "fj-kcfa"], [1])
        assert [task.analysis for task in tasks] == ["kcfa"]
        assert "x4" in task_source(tasks[0])
