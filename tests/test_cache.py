"""The persistent result cache: hits, misses, bad entries, CLI."""

from __future__ import annotations

import json

import pytest

from repro.cache import (
    CACHE_SCHEMA_VERSION, CacheStats, ResultCache, cache_key,
    default_cache_dir, open_cache,
)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key("(f 1)", "kcfa", 1) == \
            cache_key("(f 1)", "kcfa", 1)

    def test_source_sensitivity(self):
        assert cache_key("(f 1)", "kcfa", 1) != \
            cache_key("(f 2)", "kcfa", 1)

    def test_analysis_and_parameter_sensitivity(self):
        base = cache_key("(f 1)", "kcfa", 1)
        assert cache_key("(f 1)", "mcfa", 1) != base
        assert cache_key("(f 1)", "kcfa", 2) != base

    def test_option_sensitivity_and_order_insensitivity(self):
        with_opts = cache_key("(f 1)", "kcfa", 1, {"a": 1, "b": 2})
        assert with_opts != cache_key("(f 1)", "kcfa", 1)
        assert with_opts == cache_key("(f 1)", "kcfa", 1,
                                      {"b": 2, "a": 1})


class TestHitMiss:
    def test_miss_then_hit(self, cache):
        key = cache_key("src", "kcfa", 1)
        assert cache.get(key) is None
        cache.put(key, {"answer": 42})
        assert cache.get(key) == {"answer": 42}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.writes == 1

    def test_distinct_keys_do_not_collide(self, cache):
        cache.put(cache_key("a", "kcfa", 1), {"v": "a"})
        cache.put(cache_key("b", "kcfa", 1), {"v": "b"})
        assert cache.get(cache_key("a", "kcfa", 1)) == {"v": "a"}
        assert len(cache) == 2

    def test_put_overwrites(self, cache):
        key = cache_key("src", "kcfa", 1)
        cache.put(key, {"v": 1})
        cache.put(key, {"v": 2})
        assert cache.get(key) == {"v": 2}
        assert len(cache) == 1


class TestBadEntries:
    def test_corrupt_file_is_a_miss(self, cache):
        key = cache_key("src", "kcfa", 1)
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        assert cache.stats.rejected == 1

    def test_truncated_file_is_a_miss(self, cache):
        key = cache_key("src", "kcfa", 1)
        cache.put(key, {"v": 1})
        text = cache.path_for(key).read_text(encoding="utf-8")
        cache.path_for(key).write_text(text[:len(text) // 2],
                                       encoding="utf-8")
        assert cache.get(key) is None

    def test_version_mismatch_is_a_miss(self, cache):
        key = cache_key("src", "kcfa", 1)
        cache.path_for(key).write_text(json.dumps({
            "schema": CACHE_SCHEMA_VERSION + 1, "key": key,
            "payload": {"v": 1}}), encoding="utf-8")
        assert cache.get(key) is None
        assert cache.stats.rejected == 1

    def test_foreign_json_is_a_miss(self, cache):
        key = cache_key("src", "kcfa", 1)
        cache.path_for(key).write_text('["not", "an", "entry"]',
                                       encoding="utf-8")
        assert cache.get(key) is None

    def test_wrong_key_in_entry_is_a_miss(self, cache):
        key = cache_key("src", "kcfa", 1)
        other = cache_key("other", "kcfa", 1)
        cache.path_for(key).write_text(json.dumps({
            "schema": CACHE_SCHEMA_VERSION, "key": other,
            "payload": {"v": 1}}), encoding="utf-8")
        assert cache.get(key) is None

    def test_prune_removes_stale_entries(self, cache):
        good = cache_key("src", "kcfa", 1)
        cache.put(good, {"v": 1})
        (cache.directory / "stale.json").write_text(json.dumps({
            "schema": CACHE_SCHEMA_VERSION - 1, "key": "x",
            "payload": {}}), encoding="utf-8")
        (cache.directory / "junk.json").write_text("junk",
                                                   encoding="utf-8")
        assert cache.prune() == 2
        assert cache.get(good) == {"v": 1}


class TestOpenCache:
    def test_disabled_returns_none(self):
        assert open_cache(None, False) is None

    def test_enabled_with_dir(self, tmp_path):
        cache = open_cache(str(tmp_path / "c"), True)
        assert cache is not None
        assert cache.directory == tmp_path / "c"

    def test_default_dir_shape(self):
        assert default_cache_dir().name == "repro"

    def test_stats_dict(self):
        stats = CacheStats(hits=1, misses=2, writes=3, rejected=4)
        assert stats.as_dict() == {"hits": 1, "misses": 2,
                                   "writes": 3, "rejected": 4}


class TestAnalyzeCLI:
    SOURCE = "(define (id x) x)\n(+ (id 3) (id 4))\n"

    def run_analyze(self, tmp_path, capsys, *extra):
        from repro.__main__ import main
        src = tmp_path / "p.scm"
        src.write_text(self.SOURCE, encoding="utf-8")
        code = main(["analyze", str(src), "--analysis", "mcfa",
                     "-n", "1", *extra])
        captured = capsys.readouterr()
        return code, captured.out

    def test_cached_output_is_byte_identical(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        code, cold = self.run_analyze(tmp_path, capsys,
                                      "--cache-dir", cache_dir)
        assert code == 0
        code, warm = self.run_analyze(tmp_path, capsys,
                                      "--cache-dir", cache_dir)
        assert code == 0
        assert warm == cold
        code, uncached = self.run_analyze(tmp_path, capsys)
        assert uncached == cold

    def test_cache_dir_is_populated(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        self.run_analyze(tmp_path, capsys, "--cache-dir",
                         str(cache_dir))
        assert list(cache_dir.glob("*.json"))


class TestBenchCLI:
    def test_quick_honors_cache_dir(self, tmp_path, capsys):
        from repro.__main__ import main
        cache_dir = tmp_path / "bench-cache"
        args = ["bench", "--quick", "--serial",
                "--cache-dir", str(cache_dir), "--output", "-"]
        assert main(args) == 0
        capsys.readouterr()
        entries = len(list(cache_dir.glob("*.json")))
        assert entries > 0
        assert main(args) == 0
        err = capsys.readouterr().err
        assert f"cache: {entries} hits, 0 misses" in err

    def test_batch_rows_marked_cached_on_hit(self, tmp_path):
        from repro.benchsuite.runner import BenchTask, run_batch
        from repro.cache import ResultCache
        cache = ResultCache(tmp_path / "c")
        tasks = [BenchTask(program="eta", analysis="zero",
                           parameter=0, timeout=10.0)]
        cold = run_batch(tasks, serial=True, cache=cache)
        assert not cold.rows[0].get("cached")
        warm = run_batch(tasks, serial=True, cache=cache)
        assert warm.rows[0]["cached"] is True
        assert warm.rows[0]["configs"] == cold.rows[0]["configs"]

    def test_timeouts_are_not_cached(self, tmp_path):
        from repro.benchsuite.runner import BenchTask, run_batch
        from repro.cache import ResultCache
        cache = ResultCache(tmp_path / "c")
        tasks = [BenchTask(program="worst9", analysis="kcfa",
                           parameter=1, timeout=0.0001)]
        report = run_batch(tasks, serial=True, cache=cache)
        assert report.rows[0]["status"] == "timeout"
        assert cache.stats.writes == 0

    def test_plain_and_interned_cells_have_distinct_keys(self):
        from repro.benchsuite.runner import BenchTask, _task_cache_key
        interned = BenchTask(program="eta", analysis="kcfa",
                             parameter=1)
        plain = BenchTask(program="eta", analysis="kcfa",
                          parameter=1, values="plain")
        assert _task_cache_key(interned) != _task_cache_key(plain)

    def test_worst_case_programs_resolve(self):
        from repro.benchsuite.runner import (
            BenchTask, build_matrix, task_source,
        )
        tasks = build_matrix(["worst4"], ["kcfa", "fj-kcfa"], [1])
        assert [task.analysis for task in tasks] == ["kcfa"]
        assert "x4" in task_source(tasks[0])
