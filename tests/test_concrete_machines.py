"""Tests for the concrete CPS machines — including the load-bearing
property that the shared-environment and flat-environment machines
compute identical values (the paper's §5.1 claim that environment
representation does not change program meaning)."""

import pytest

from repro.concrete import (
    FlatEnvMachine, SharedEnvMachine, run_flat, run_shared,
)
from repro.errors import EvaluationError, FuelExhausted
from repro.scheme.cps_transform import compile_program
from repro.scheme.interp import run_source
from repro.scheme.values import PairVal, scheme_repr

PROGRAMS = {
    "const": ("42", 42),
    "apply": ("((lambda (x y) (- x y)) 10 4)", 6),
    "curried": ("(((lambda (x) (lambda (y) (* x y))) 6) 7)", 42),
    "fact": ("(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))"
             "(fact 6)", 720),
    "fib": ("(define (fib n) (if (< n 2) n "
            "(+ (fib (- n 1)) (fib (- n 2))))) (fib 10)", 55),
    "mutual": ("(define (even? n) (if (= n 0) #t (odd? (- n 1))))"
               "(define (odd? n) (if (= n 0) #f (even? (- n 1))))"
               "(odd? 7)", True),
    "let-chain": ("(let ((a 1)) (let ((b (+ a 1))) (let ((c (* b b)))"
                  " (+ a (+ b c)))))", 7),
    "higher-order": ("(define (apply2 f x) (f (f x)))"
                     "(apply2 (lambda (n) (* 3 n)) 2)", 18),
    "shadow": ("((lambda (x) ((lambda (x) (+ x 1)) (* x 2))) 5)", 11),
    "begin": ("(begin 1 2 3)", 3),
}


@pytest.mark.parametrize("name", PROGRAMS)
class TestMachineAgreement:
    def test_shared_matches_direct(self, name):
        source, expected = PROGRAMS[name]
        program = compile_program(source)
        assert run_shared(program).value == expected

    def test_flat_matches_direct(self, name):
        source, expected = PROGRAMS[name]
        program = compile_program(source)
        assert run_flat(program).value == expected

    def test_flat_history_policy_matches(self, name):
        source, expected = PROGRAMS[name]
        program = compile_program(source)
        assert run_flat(program, env_policy="history").value == expected


class TestPairsAndLists:
    def test_cons_roundtrip(self):
        program = compile_program("(cons 1 (cons 2 '()))")
        for result in (run_shared(program), run_flat(program)):
            assert isinstance(result.value, PairVal)
            assert scheme_repr(result.value) == "(1 2)"

    def test_closures_in_lists(self):
        source = """
        (define (apply-all fs x)
          (if (null? fs) x (apply-all (cdr fs) ((car fs) x))))
        (apply-all (list (lambda (a) (+ a 1)) (lambda (b) (* b 2))) 10)
        """
        program = compile_program(source)
        assert run_shared(program).value == 22
        assert run_flat(program).value == 22


class TestSharedEnvDetails:
    def test_integer_time_increments(self):
        program = compile_program("((lambda (x) x) 1)")
        machine = SharedEnvMachine(program)
        result = machine.run()
        assert result.final_time >= 1

    def test_history_time_is_label_sequence(self):
        program = compile_program("((lambda (x) x) 1)")
        result = run_shared(program, time_mode="history")
        assert isinstance(result.final_time, tuple)

    def test_store_is_write_once(self):
        # fresh times per binding: addresses are never overwritten,
        # so every store key maps to the first (and only) write.
        program = compile_program(
            "(define (f n) (if (= n 0) 0 (f (- n 1)))) (f 5)")
        machine = SharedEnvMachine(program)
        machine.run()
        # If an address were overwritten, this run would have fewer
        # store entries than binding events; count both.
        assert len(machine.store) > 0

    def test_trace_recording(self):
        program = compile_program("((lambda (x) x) 1)")
        result = run_shared(program, record_trace=True)
        assert len(result.trace) == result.steps

    def test_invalid_time_mode(self):
        program = compile_program("1")
        with pytest.raises(ValueError):
            SharedEnvMachine(program, time_mode="bogus")


class TestFlatEnvDetails:
    def test_environments_fresh(self):
        program = compile_program(
            "(define (f x) x) (+ (f 1) (f 2))")
        machine = FlatEnvMachine(program)
        machine.run()
        envs = {env for (_name, env) in machine.store}
        serials = [serial for serial, _frames in envs]
        assert len(serials) == len(set(serials)) or len(envs) > 0

    def test_stack_policy_restores_frames(self):
        # After a continuation call the frames must come from the
        # continuation's closure, not keep growing.
        source = "(define (id x) x) (id (id (id 1)))"
        program = compile_program(source)
        machine = FlatEnvMachine(program, record_trace=True)
        result = machine.run()
        assert result.value == 1
        depths = [len(entry.env[1]) for entry in result.trace]
        assert max(depths) <= 4  # bounded call depth, not trace length

    def test_history_policy_grows(self):
        source = "(define (id x) x) (id (id (id 1)))"
        program = compile_program(source)
        machine = FlatEnvMachine(program, env_policy="history",
                                 record_trace=True)
        result = machine.run()
        depths = [len(entry.env[1]) for entry in result.trace]
        assert max(depths) > 4  # every call extends the history

    def test_invalid_policy(self):
        program = compile_program("1")
        with pytest.raises(ValueError):
            FlatEnvMachine(program, env_policy="bogus")


class TestMachineErrors:
    def test_apply_non_procedure(self):
        program = compile_program("(1 2)")
        with pytest.raises(EvaluationError):
            run_shared(program)
        with pytest.raises(EvaluationError):
            run_flat(program)

    def test_arity_mismatch(self):
        program = compile_program("((lambda (x y) x) 1)")
        with pytest.raises(EvaluationError):
            run_shared(program)

    def test_fuel(self):
        program = compile_program("(define (loop) (loop)) (loop)")
        with pytest.raises(FuelExhausted):
            run_shared(program, fuel=500)
        with pytest.raises(FuelExhausted):
            run_flat(program, fuel=500)


class TestSuiteAgreement:
    """Every §6.2 suite program: three evaluators, one answer."""

    @pytest.mark.parametrize("bench_name", [
        "eta", "map", "sat", "regex", "interp", "scm2java", "scm2c",
    ])
    def test_all_evaluators_agree(self, bench_name, suite_compiled):
        from repro.benchsuite import BY_NAME
        bench = BY_NAME[bench_name]
        program = suite_compiled[bench_name]
        direct = run_source(bench.source)
        shared = run_shared(program).value
        flat = run_flat(program).value
        assert direct == shared == flat == bench.expected
