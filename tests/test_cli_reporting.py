"""Tests for the reporting module and the command-line interface."""

import pytest

from repro.__main__ import main
from repro.analysis import analyze_kcfa, analyze_mcfa
from repro.fj import analyze_fj_kcfa, parse_fj
from repro.fj.examples import DISPATCH, PAIRS
from repro.reporting import (
    environment_report, fj_report, flow_report, inlining_report,
    job_event_line, render_flow_set, render_value,
    service_stats_report, summary_table,
)
from repro.scheme.cps_transform import compile_program

SOURCE = """
(define (compose f g) (lambda (x) (f (g x))))
((compose (lambda (a) (+ a 1)) (lambda (b) (* b 2))) 20)
"""


@pytest.fixture(scope="module")
def result():
    return analyze_mcfa(compile_program(SOURCE), 1)


class TestRendering:
    def test_render_basic(self):
        from repro.analysis import BASIC
        assert render_value(BASIC) == "⊤"

    def test_render_const(self):
        from repro.analysis import AConst
        assert render_value(AConst(7)) == "7"

    def test_render_closure(self, result):
        closures = [v for values in
                    (values for _a, values in result.store.items())
                    for v in values if hasattr(v, "lam")]
        assert render_value(closures[0]).startswith("λ@")

    def test_render_flow_set_sorted(self):
        from repro.analysis import AConst
        text = render_flow_set({AConst(2), AConst(1)})
        assert text == "{1, 2}"


class TestReports:
    def test_flow_report_mentions_user_variables(self, result):
        report = flow_report(result)
        assert "compose" in report
        assert "result:" in report

    def test_flow_report_elides_generated(self, result):
        report = flow_report(result)
        assert "rv%" not in report
        full = flow_report(result, include_generated=True)
        assert len(full) >= len(report)

    def test_inlining_report(self, result):
        report = inlining_report(result)
        assert "supported inlinings: 4" in report
        assert "INLINE" in report

    def test_environment_report(self, result):
        report = environment_report(result)
        assert "total:" in report
        assert "λ@" in report

    def test_fj_report(self):
        fj_result = analyze_fj_kcfa(parse_fj(DISPATCH), 1)
        report = fj_report(fj_result)
        assert "abstract objects per class" in report
        assert "MONO" in report or "poly" in report

    def test_summary_table(self):
        program = compile_program(SOURCE)
        table = summary_table([analyze_mcfa(program, 1),
                               analyze_kcfa(program, 1)])
        assert "m-CFA" in table and "k-CFA" in table

    def test_flow_report_row_cap(self, result):
        capped = flow_report(result, max_rows=1,
                             include_generated=True)
        assert "more rows" in capped


class TestServiceReporting:
    def test_job_event_lines(self):
        assert job_event_line({"event": "queued", "job": "c1",
                               "key": "ab" * 32}) \
            == "[c1] queued (key abababababab)"
        assert job_event_line({"event": "running", "job": "c1"}) \
            == "[c1] running"
        assert "coalesced" in job_event_line(
            {"event": "running", "job": "c1", "coalesced": True})
        done = job_event_line({"event": "done", "job": "c1",
                               "status": "ok", "cached": True,
                               "wall_seconds": 0.25})
        assert done == "[c1] ok cached in 0.25s"
        assert job_event_line({"event": "error", "job": "c1",
                               "error": "boom"}) \
            == "[c1] error: boom"

    def test_service_stats_report(self):
        stats = {"endpoint": "127.0.0.1:7557", "protocol": 1,
                 "workers": 4, "uptime_seconds": 12.3,
                 "jobs": {"submitted": 10, "completed": 9, "ok": 7,
                          "timeout": 1, "error": 1, "coalesced": 2,
                          "rejected": 0, "executed": 5},
                 "inflight": 1,
                 "cache": {"hits": 3, "misses": 7, "writes": 5,
                           "rejected": 0}}
        report = service_stats_report(stats)
        assert "127.0.0.1:7557" in report
        assert "10 submitted" in report
        assert "2 coalesced" in report
        assert "3 hits" in report

    def test_service_stats_report_without_cache(self):
        report = service_stats_report({"jobs": {}, "cache": None})
        assert "cache: disabled" in report


class TestCLI:
    def _write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    def test_analyze_command(self, tmp_path, capsys):
        path = self._write(tmp_path, "p.scm", SOURCE)
        assert main(["analyze", path, "--analysis", "mcfa",
                     "-n", "1"]) == 0
        out = capsys.readouterr().out
        assert "supported inlinings" in out

    def test_analyze_with_simplify(self, tmp_path, capsys):
        path = self._write(tmp_path, "p.scm", SOURCE)
        assert main(["analyze", path, "--simplify",
                     "--report", "flow"]) == 0
        assert "flow facts" in capsys.readouterr().out

    @pytest.mark.parametrize("analysis", [
        "kcfa", "mcfa", "poly", "zero", "kcfa-naive", "kcfa-gc"])
    def test_every_analysis_selectable(self, tmp_path, capsys,
                                       analysis):
        path = self._write(tmp_path, "p.scm", "((lambda (x) x) 1)")
        assert main(["analyze", path, "--analysis", analysis]) == 0

    def test_run_command(self, tmp_path, capsys):
        path = self._write(tmp_path, "p.scm", "(+ 40 2)")
        assert main(["run", path]) == 0
        assert capsys.readouterr().out.strip() == "42"

    def test_run_direct_machine(self, tmp_path, capsys):
        path = self._write(tmp_path, "p.scm", "(cons 1 2)")
        assert main(["run", path, "--machine", "direct"]) == 0
        assert "(1 . 2)" in capsys.readouterr().out

    def test_run_flat_machine(self, tmp_path, capsys):
        path = self._write(tmp_path, "p.scm", "(* 6 7)")
        assert main(["run", path, "--machine", "flat"]) == 0
        assert "42" in capsys.readouterr().out

    def test_fj_command(self, tmp_path, capsys):
        path = self._write(tmp_path, "p.java", PAIRS)
        assert main(["fj", path, "-k", "1"]) == 0
        out = capsys.readouterr().out
        assert "Pair" in out

    def test_fj_gc_flag(self, tmp_path, capsys):
        path = self._write(tmp_path, "p.java", DISPATCH)
        assert main(["fj", path, "--gc"]) == 0
        assert "FJ-k-CFA+GC" in capsys.readouterr().out

    def test_missing_file_is_error(self, capsys):
        assert main(["analyze", "/nonexistent/x.scm"]) == 1
        assert "error" in capsys.readouterr().err

    def test_scheme_error_reported(self, tmp_path, capsys):
        path = self._write(tmp_path, "bad.scm", "(lambda (x)")
        assert main(["analyze", path]) == 1
        assert "error" in capsys.readouterr().err
