"""The paper's claims as executable assertions.

Each test class corresponds to an experiment in DESIGN.md's index
(E1–E8).  These are the integration tests that make the reproduction a
reproduction.
"""

import pytest

from repro.analysis import (
    analyze_kcfa, analyze_mcfa, analyze_poly_kcfa, analyze_zerocfa,
    AConst,
)
from repro.errors import AnalysisTimeout
from repro.fj import analyze_fj_kcfa, parse_fj, run_fj
from repro.generators.paradox import (
    find_cxy_lambda, paradox_fj_source, paradox_functional_program,
)
from repro.generators.worstcase import worst_case_program
from repro.metrics.complexity import (
    bits, kcfa_lattice_height, mcfa_lattice_height,
)
from repro.scheme.cps_transform import compile_program
from repro.util.budget import Budget


class TestE1_Figure1_OOEnvironments:
    """OO 1-CFA computes O(N+M) environments for the paradox program."""

    @pytest.mark.parametrize("n,m", [(2, 2), (4, 4), (8, 8), (4, 8)])
    def test_linear_environment_count(self, n, m):
        program = parse_fj(paradox_fj_source(n, m),
                           entry_method="caller")
        result = analyze_fj_kcfa(program, 1)
        envs = result.total_environments()
        # measured form: 3(N+M) + 1 — linear, nowhere near N*M growth
        assert envs == 3 * (n + m) + 1

    def test_program_actually_runs(self):
        program = parse_fj(paradox_fj_source(3, 3),
                           entry_method="caller")
        result = run_fj(program)
        assert result.value.classname == "Object"

    def test_closure_xy_objects_linear_in_m(self):
        program = parse_fj(paradox_fj_source(5, 3),
                           entry_method="caller")
        result = analyze_fj_kcfa(program, 1)
        # one abstract ClosureXY per bar-invocation context: M of them
        assert len(result.objects_of_class("ClosureXY")) == 3

    def test_closure_xy_x_field_merges_all_n(self):
        """Figure 1's table: bar::ClosureXY.x -> [ox1, ..., oxN]."""
        n, m = 4, 2
        program = parse_fj(paradox_fj_source(n, m),
                           entry_method="caller")
        result = analyze_fj_kcfa(program, 1)
        for obj in result.objects_of_class("ClosureXY"):
            x_values = result.store.get(obj.benv["x"])
            assert len(x_values) == n
            y_values = result.store.get(obj.benv["y"])
            assert len(y_values) == 1  # y stays per-context


class TestE2_Figure2_FunctionalEnvironments:
    """Functional 1-CFA computes O(N·M) environments (Figure 2)."""

    @pytest.mark.parametrize("n,m", [(2, 2), (3, 4), (4, 4), (8, 4)])
    def test_product_environment_count(self, n, m):
        program = paradox_functional_program(n, m)
        result = analyze_kcfa(program, 1)
        cxy = find_cxy_lambda(program)
        assert result.environment_count(cxy) == n * m

    def test_mcfa_stays_small(self):
        program = paradox_functional_program(6, 6)
        result = analyze_mcfa(program, 1)
        cxy = find_cxy_lambda(program)
        assert result.environment_count(cxy) <= 2

    def test_oo_vs_functional_separation_grows(self):
        """The heart of the paradox: same program, same k, OO linear
        vs functional multiplicative."""
        for n, m in [(4, 4), (6, 6)]:
            fun = analyze_kcfa(paradox_functional_program(n, m), 1)
            cxy = find_cxy_lambda(fun.program)
            oo = analyze_fj_kcfa(
                parse_fj(paradox_fj_source(n, m),
                         entry_method="caller"), 1)
            assert fun.environment_count(cxy) == n * m
            assert oo.total_environments() < n * m + 10


class TestE3_LatticeHeights:
    """§3.7 vs §5.4: exponential vs polynomial lattice sizes."""

    @staticmethod
    def _wide_program(params: int):
        names = " ".join(f"a{i}" for i in range(params))
        args = " ".join(["1"] * params)
        return compile_program(f"((lambda ({names}) (+ {names})) {args})")

    def test_kcfa_height_exponential_in_vars(self):
        # bit-counts grow ~linearly in |Var|, i.e. the height itself
        # grows exponentially (the |BEnv| = |Time|^|Var| factor).
        small = bits(kcfa_lattice_height(self._wide_program(2), 1))
        large = bits(kcfa_lattice_height(self._wide_program(16), 1))
        assert large > 2.5 * small

    def test_mcfa_height_polynomial(self):
        # m-CFA bit-counts barely move: the height is polynomial.
        small = bits(mcfa_lattice_height(self._wide_program(2), 1))
        large = bits(mcfa_lattice_height(self._wide_program(16), 1))
        assert large <= small + 4

    def test_zero_cfa_heights_modest(self):
        program = compile_program("((lambda (x) x) 1)")
        assert kcfa_lattice_height(program, 0) < 10 ** 9


class TestE4_WorstCaseTable:
    """§6.1.1: k=1 blows up on Van Horn–Mairson terms; m=1, poly and
    k=0 stay polynomial."""

    def test_kcfa_steps_double_per_level(self):
        steps = [analyze_kcfa(worst_case_program(d), 1).steps
                 for d in (4, 6, 8)]
        assert steps[1] / steps[0] > 3  # ~2 levels => ~4x
        assert steps[2] / steps[1] > 3

    def test_flat_analyses_grow_slowly(self):
        for analyze in (lambda p: analyze_mcfa(p, 1),
                        lambda p: analyze_poly_kcfa(p, 1),
                        analyze_zerocfa):
            steps = [analyze(worst_case_program(d)).steps
                     for d in (4, 6, 8)]
            assert steps[2] / steps[0] < 4  # polynomial growth

    def test_kcfa_times_out_where_mcfa_finishes(self):
        program = worst_case_program(14)
        budget_steps = 30_000
        with pytest.raises(AnalysisTimeout):
            analyze_kcfa(program, 1, Budget(max_steps=budget_steps))
        result = analyze_mcfa(program, 1,
                              Budget(max_steps=budget_steps))
        assert not result.timed_out

    def test_exponential_closure_blowup_observable(self):
        """2^n abstract environments close the inner lambda (§2.2)."""
        depth = 6
        program = worst_case_program(depth)
        result = analyze_kcfa(program, 1)
        inner = next(lam for lam in program.user_lams
                     if any(p.startswith("z") for p in lam.params))
        # every combination of the xi contexts materializes somewhere
        # in the store: 2^depth distinct abstract closures of (λ (z) …)
        closures = set()
        for _addr, values in result.store.items():
            closures |= {value for value in values
                         if getattr(value, "lam", None) is inner}
        assert len(closures) == 2 ** depth
        # the halt flow pins the outermost binding (sequencing keeps
        # only the second branch) and varies the other depth-1 levels
        at_halt = {value for value in result.halt_values
                   if getattr(value, "lam", None) is inner}
        assert len(at_halt) == 2 ** (depth - 1)


class TestE6_IdentityExample:
    """§6's identity/do-something example, end to end."""

    PLAIN = """
    (define (identity x) x)
    (identity 3)
    (identity 4)
    """
    PERTURBED = """
    (define (do-something) 42)
    (define (identity x) (do-something) x)
    (identity 3)
    (identity 4)
    """

    def test_without_intervening_call_all_agree_on_4(self):
        program = compile_program(self.PLAIN)
        for analyze in (lambda p: analyze_kcfa(p, 1),
                        lambda p: analyze_mcfa(p, 1),
                        lambda p: analyze_poly_kcfa(p, 1)):
            assert analyze(program).halt_values == {AConst(4)}

    def test_with_intervening_call_poly_degenerates(self):
        program = compile_program(self.PERTURBED)
        assert analyze_kcfa(program, 1).halt_values == {AConst(4)}
        assert analyze_mcfa(program, 1).halt_values == {AConst(4)}
        poly = analyze_poly_kcfa(program, 1).halt_values
        zero = analyze_zerocfa(program).halt_values
        assert poly == zero == {AConst(3), AConst(4)}


class TestE7_FJPolynomialVsFunctionalExponential:
    """§4.4: the same k-CFA specification, applied to the same
    closure-chain program, is polynomial in its OO form (explicit
    closure classes copy all captured variables at once) and
    exponential in its functional form."""

    def test_fj_worst_case_scales_polynomially(self):
        from repro.generators.worstcase import worst_case_fj_source
        steps = []
        for depth in (3, 6, 12):
            program = parse_fj(worst_case_fj_source(depth),
                               entry_method="run")
            steps.append(analyze_fj_kcfa(program, 1).steps)
        # doubling the depth roughly doubles the work — linear-ish
        assert steps[1] / steps[0] < 6
        assert steps[2] / steps[1] < 6

    def test_functional_worst_case_scales_exponentially(self):
        steps = [analyze_kcfa(worst_case_program(depth), 1).steps
                 for depth in (3, 6, 9)]
        assert steps[1] / steps[0] > 5
        assert steps[2] / steps[1] > 5

    def test_fj_worst_case_runs_concretely(self):
        from repro.generators.worstcase import worst_case_fj_source
        program = parse_fj(worst_case_fj_source(4), entry_method="run")
        assert run_fj(program).value.classname == "Z"

    def test_fj_worst_case_objects_linear(self):
        """Explicit closing collapses contexts: 2 abstract closure
        objects per level, not 2^level."""
        from repro.generators.worstcase import worst_case_fj_source
        depth = 8
        program = parse_fj(worst_case_fj_source(depth),
                           entry_method="run")
        result = analyze_fj_kcfa(program, 1)
        for level in range(2, depth + 1):
            objs = result.objects_of_class(f"Clos{level}")
            assert len(objs) <= 2


class TestE8_HierarchyIdentities:
    def test_m0_equals_k0_on_suite(self, suite_compiled):
        for name, program in suite_compiled.items():
            m0 = analyze_mcfa(program, 0)
            k0 = analyze_kcfa(program, 0)
            assert m0.halt_values == k0.halt_values, name
            assert m0.supported_inlinings() == \
                k0.supported_inlinings(), name

    def test_m1_matches_k1_inlinings_on_suite(self, suite_compiled):
        """§6.2's headline: m-CFA is as precise as k-CFA in practice."""
        for name, program in suite_compiled.items():
            k1 = analyze_kcfa(program, 1)
            m1 = analyze_mcfa(program, 1)
            assert m1.supported_inlinings() == \
                k1.supported_inlinings(), name

    def test_m1_cheaper_than_k1_on_suite(self, suite_compiled):
        """...at a fraction of the cost (worklist steps as the
        machine-independent cost measure)."""
        slower = 0
        for program in suite_compiled.values():
            k1 = analyze_kcfa(program, 1)
            m1 = analyze_mcfa(program, 1)
            if m1.steps <= k1.steps:
                slower += 1
        assert slower >= 5  # m-CFA cheaper on almost every program

    def test_poly_never_beats_m1_on_suite(self, suite_compiled):
        """poly k=1 is never more precise than m=1 (§6.2)."""
        for name, program in suite_compiled.items():
            m1 = analyze_mcfa(program, 1)
            poly = analyze_poly_kcfa(program, 1)
            assert poly.supported_inlinings() <= \
                m1.supported_inlinings(), name

    def test_expected_inlining_table_shape(self, suite_compiled):
        """The qualitative §6.2 pattern: eta, scm2java and scm2c show
        poly-1 = 0CFA < m-1 = k-1; map shows only 0CFA losing."""
        def inl(analyze, program):
            return analyze(program).supported_inlinings()

        for name in ("eta", "scm2java", "scm2c"):
            program = suite_compiled[name]
            k1 = inl(lambda p: analyze_kcfa(p, 1), program)
            poly = inl(lambda p: analyze_poly_kcfa(p, 1), program)
            zero = inl(analyze_zerocfa, program)
            assert k1 > poly == zero, name

        program = suite_compiled["map"]
        k1 = inl(lambda p: analyze_kcfa(p, 1), program)
        poly = inl(lambda p: analyze_poly_kcfa(p, 1), program)
        zero = inl(analyze_zerocfa, program)
        assert k1 == poly > zero
