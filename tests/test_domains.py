"""Tests for the abstract domains: BEnv, stores, values, first_k."""

import pytest

from repro.analysis.domains import (
    AConst, APair, AbsStore, BASIC, BEnv, BasicValue, EMPTY_BENV,
    FClo, FrozenStore, KClo, abstract_literal, first_k, maybe_falsy,
    maybe_truthy,
)


class TestFirstK:
    def test_truncates(self):
        assert first_k(2, (1, 2, 3)) == (1, 2)

    def test_shorter_kept(self):
        assert first_k(5, (1, 2)) == (1, 2)

    def test_zero(self):
        assert first_k(0, (1, 2)) == ()


class TestBasicValue:
    def test_singleton(self):
        assert BasicValue() is BASIC

    def test_repr(self):
        assert "basic" in repr(BASIC)


class TestAConst:
    def test_equality(self):
        assert AConst(3) == AConst(3)
        assert AConst(3) != AConst(4)

    def test_bool_distinct_from_int(self):
        # dataclass equality uses ==, so guard against True == 1:
        # both abstractions exist but a flow query must not confuse
        # truthiness.
        assert maybe_falsy(AConst(False))
        assert not maybe_falsy(AConst(0))  # 0 is truthy in Scheme

    def test_abstract_literal_atomic(self):
        assert abstract_literal(5) == AConst(5)
        assert abstract_literal(True) == AConst(True)
        assert abstract_literal("s") == AConst("s")

    def test_abstract_literal_structure_is_basic(self):
        assert abstract_literal((1, 2)) is BASIC

    def test_truthiness(self):
        assert maybe_truthy(AConst(0))
        assert maybe_truthy(BASIC) and maybe_falsy(BASIC)
        assert not maybe_truthy(AConst(False))
        assert not maybe_falsy(AConst(42))


class TestBEnv:
    def test_lookup(self):
        benv = BEnv([("x", (1,)), ("y", (2,))])
        assert benv["x"] == (1,)
        assert benv.get("z") is None
        assert "y" in benv

    def test_equality_order_independent(self):
        assert BEnv([("a", ()), ("b", (1,))]) == \
            BEnv([("b", (1,)), ("a", ())])

    def test_hashable(self):
        assert hash(BEnv([("x", (1,))])) == hash(BEnv([("x", (1,))]))

    def test_extend(self):
        benv = EMPTY_BENV.extend(["x", "y"], (3,))
        assert benv["x"] == (3,) and benv["y"] == (3,)

    def test_extend_overrides(self):
        benv = BEnv([("x", (1,))]).extend(["x"], (2,))
        assert benv["x"] == (2,)

    def test_restrict(self):
        benv = BEnv([("x", (1,)), ("y", (2,))])
        restricted = benv.restrict(frozenset({"x"}))
        assert "y" not in restricted
        assert restricted["x"] == (1,)

    def test_len_and_iter(self):
        benv = BEnv([("a", ()), ("b", ())])
        assert len(benv) == 2
        assert sorted(benv) == ["a", "b"]


class TestAbsStore:
    def test_empty_lookup(self):
        store = AbsStore()
        assert store.get(("x", ())) == frozenset()

    def test_join_reports_growth(self):
        store = AbsStore()
        assert store.join(("x", ()), {BASIC}) is True
        assert store.join(("x", ()), {BASIC}) is False
        assert store.join(("x", ()), {AConst(1)}) is True

    def test_join_empty_is_noop(self):
        store = AbsStore()
        assert store.join(("x", ()), frozenset()) is False
        assert len(store) == 0

    def test_monotone(self):
        store = AbsStore()
        store.join(("x", ()), {AConst(1)})
        store.join(("x", ()), {AConst(2)})
        assert store.get(("x", ())) == {AConst(1), AConst(2)}

    def test_total_values(self):
        store = AbsStore()
        store.join(("x", ()), {AConst(1), AConst(2)})
        store.join(("y", ()), {BASIC})
        assert store.total_values() == 3


class TestFrozenStore:
    def test_join_returns_new(self):
        store = FrozenStore()
        grown = store.join(("x", ()), {BASIC})
        assert store is not grown
        assert grown.get(("x", ())) == {BASIC}
        assert store.get(("x", ())) == frozenset()

    def test_join_same_returns_self(self):
        store = FrozenStore().join(("x", ()), {BASIC})
        assert store.join(("x", ()), {BASIC}) is store

    def test_hash_equality(self):
        one = FrozenStore().join(("x", ()), {BASIC})
        two = FrozenStore().join(("x", ()), {BASIC})
        assert one == two
        assert hash(one) == hash(two)

    def test_widen(self):
        one = FrozenStore().join(("x", ()), {AConst(1)})
        two = FrozenStore().join(("x", ()), {AConst(2)})
        merged = one.widen(two)
        assert merged.get(("x", ())) == {AConst(1), AConst(2)}

    def test_join_many(self):
        store = FrozenStore().join_many([
            (("x", ()), {AConst(1)}),
            (("y", ()), {AConst(2)}),
        ])
        assert len(store) == 2


class TestValueTypes:
    def test_kclo_hashable_by_identity_lam(self):
        from repro.cps.syntax import Lam, LamKind, HaltCall, Ref
        lam = Lam(LamKind.USER, ("x",), HaltCall(Ref("x"), 0), 1)
        assert KClo(lam, EMPTY_BENV) == KClo(lam, EMPTY_BENV)

    def test_fclo_distinct_envs(self):
        from repro.cps.syntax import Lam, LamKind, HaltCall, Ref
        lam = Lam(LamKind.USER, ("x",), HaltCall(Ref("x"), 0), 1)
        assert FClo(lam, (1,)) != FClo(lam, (2,))

    def test_apair_fields(self):
        pair = APair(("car@1", ()), ("cdr@1", ()))
        assert pair.car[0] == "car@1"
