"""Tests for the CPS shrink simplifier."""

import pytest

from repro.analysis import analyze_kcfa, analyze_mcfa
from repro.benchsuite import SUITE
from repro.concrete import run_flat, run_shared
from repro.cps.simplify import simplify_program
from repro.cps.syntax import AppCall, Lam, iter_calls
from repro.scheme.cps_transform import compile_program
from repro.scheme.values import values_equal


class TestShrinking:
    def test_let_chain_contracts(self):
        # (let ((a 1)) (let ((b a)) b)) — two administrative redexes
        program = compile_program("(let ((a 1)) (let ((b a)) b))")
        simplified = simplify_program(program)
        assert simplified.term_count() < program.term_count()

    def test_eta_continuation_removed(self):
        program = compile_program("(define (f x) x) (f (f 1))")
        simplified = simplify_program(program)
        assert simplified.term_count() <= program.term_count()

    def test_fixed_point_reached(self):
        program = compile_program("(let ((a 1)) a)")
        once = simplify_program(program)
        twice = simplify_program(once)
        assert once.term_count() == twice.term_count()

    def test_labels_fresh_and_unique(self):
        program = compile_program(
            "(define (f x) (if (= x 0) 1 (f (- x 1)))) (f 3)")
        simplified = simplify_program(program)
        # Program validation would reject duplicates; also check
        # density (relabeling starts at 0):
        labels = sorted(simplified.calls_by_label)
        assert labels[0] >= 0

    def test_non_atomic_arguments_not_contracted(self):
        # a continuation applied to a lambda is NOT contracted (that
        # could duplicate the lambda node through multiple uses)
        program = compile_program(
            "(let ((f (lambda (x) x))) (cons (f 1) (f 2)))")
        simplified = simplify_program(program)
        lams = list(simplified.lams)
        assert len(lams) == len({id(lam) for lam in lams})


class TestSemanticPreservation:
    SOURCES = [
        "42",
        "(let ((a 1)) (let ((b a)) (+ a b)))",
        "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1))))) (fact 5)",
        "(define (id x) x) (cons (id 1) (id (lambda (y) y)))",
        "(begin 1 2 (car (cons 3 4)))",
        "((lambda (f) (f (f 5))) (lambda (n) (* n n)))",
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_values_preserved(self, source):
        # closures from distinct programs cannot compare equal, so
        # compare printed forms (procedures render opaquely).
        from repro.scheme.values import scheme_repr
        program = compile_program(source)
        simplified = simplify_program(program)
        assert scheme_repr(run_shared(program).value) == \
            scheme_repr(run_shared(simplified).value)
        assert scheme_repr(run_flat(program).value) == \
            scheme_repr(run_flat(simplified).value)

    @pytest.mark.parametrize("bench_name", [b.name for b in SUITE])
    def test_suite_values_preserved(self, bench_name, suite_compiled):
        from repro.benchsuite import BY_NAME
        program = suite_compiled[bench_name]
        simplified = simplify_program(program)
        assert run_shared(simplified).value == \
            BY_NAME[bench_name].expected

    def test_analysis_still_sound_after_simplify(self):
        from repro.analysis.abstraction import check_kcfa_soundness
        program = simplify_program(compile_program(
            "(define (id x) x) (cons (id 1) (id 2))"))
        concrete = run_shared(program, record_trace=True,
                              time_mode="history")
        report = check_kcfa_soundness(analyze_kcfa(program, 1),
                                      concrete)
        assert report, report.violations

    def test_shrinks_suite_terms(self, suite_compiled):
        shrunk = 0
        for program in suite_compiled.values():
            simplified = simplify_program(program)
            if simplified.term_count() < program.term_count():
                shrunk += 1
        assert shrunk >= 5  # most programs have administrative redexes


class TestSimplifyProperties:
    def test_random_programs_preserve_values(self):
        from repro.generators.random_programs import random_program
        for seed in range(40):
            program = random_program(seed, 4)
            simplified = simplify_program(program)
            assert values_equal(run_shared(program).value,
                                run_shared(simplified).value), seed

    def test_simplified_analysis_agrees_on_halt(self):
        # shrinking is semantics-preserving, so the abstract result
        # must still cover the concrete value (precision may differ)
        from repro.generators.random_programs import random_program
        for seed in range(20):
            program = random_program(seed, 4)
            simplified = simplify_program(program)
            result = analyze_mcfa(simplified, 1)
            assert result.halt_values, seed
