"""Tests for abstract garbage collection (ΓCFA) — the paper's §8
future-work item, on both sides of the bridge."""

import pytest

from repro.analysis import (
    AConst, analyze_kcfa, analyze_kcfa_naive,
)
from repro.analysis.abstraction import check_kcfa_soundness
from repro.analysis.gc import (
    analyze_kcfa_gc, collect, config_roots, reachable_addresses,
)
from repro.concrete import run_shared
from repro.fj import analyze_fj_kcfa, parse_fj, run_fj
from repro.fj.examples import ALL_EXAMPLES, OO_IDENTITY
from repro.fj.gc import analyze_fj_kcfa_gc
from repro.scheme.cps_transform import compile_program


class TestFunctionalGC:
    REBIND = "(define (id x) x) (id 1) (id 2)"

    def test_gc_precision_win_at_k0(self):
        """The ΓCFA headline: collecting the dead binding of x between
        the two calls lets 0CFA+GC report the exact result."""
        program = compile_program(self.REBIND)
        plain = analyze_kcfa(program, 0)
        collected = analyze_kcfa_gc(program, 0)
        assert plain.halt_values == {AConst(1), AConst(2)}
        assert collected.halt_values == {AConst(2)}

    def test_gc_never_less_precise_on_halt(self):
        sources = [
            self.REBIND,
            "(define (f x) (+ x 1)) (f (f 1))",
            "(let ((p (cons 1 2))) (car p))",
            "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))"
            "(fact 3)",
        ]
        for source in sources:
            program = compile_program(source)
            plain = analyze_kcfa_naive(program, 1)
            collected = analyze_kcfa_gc(program, 1)
            assert collected.halt_values <= plain.halt_values, source

    def test_gc_result_coverage(self):
        """GC may drop *dead* concrete bindings — that is its job —
        but the program result must always stay covered."""
        for source in (self.REBIND,
                       "(define (f g) (g 1)) (f (lambda (x) x))",
                       "(car (cons (lambda (v) v) 0))"):
            program = compile_program(source)
            concrete = run_shared(program, record_trace=True,
                                  time_mode="history")
            result = analyze_kcfa_gc(program, 1)
            report = check_kcfa_soundness(result, concrete)
            halt_gaps = [v for v in report.violations
                         if v.startswith("halt")]
            assert not halt_gaps, halt_gaps

    def test_gc_random_result_coverage(self):
        """Property: on random programs, 0CFA+GC's halt set covers the
        concrete result (via the α coverage checker)."""
        from repro.generators.random_programs import random_program
        for seed in range(25):
            program = random_program(seed, 4)
            concrete = run_shared(program, record_trace=True,
                                  time_mode="history")
            result = analyze_kcfa_gc(program, 0)
            report = check_kcfa_soundness(result, concrete)
            halt_gaps = [v for v in report.violations
                         if v.startswith("halt")]
            assert not halt_gaps, (seed, halt_gaps)

    def test_gc_can_reduce_state_count(self):
        program = compile_program("""
            (define (iter n f) (if (= n 0) (f 0) (iter (- n 1) f)))
            (iter 3 (lambda (x) x))
        """)
        naive = analyze_kcfa_naive(program, 1)
        collected = analyze_kcfa_gc(program, 1)
        assert collected.state_count <= naive.state_count

    def test_reachability_through_pairs(self):
        program = compile_program(
            "(let ((p (cons (lambda (v) v) 0))) ((car p) 1))")
        result = analyze_kcfa_gc(program, 1)
        assert AConst(1) in result.halt_values

    def test_reachability_helpers(self):
        from repro.analysis.domains import FrozenStore
        from repro.analysis.kcfa import KCFAMachine
        program = compile_program("(let ((a 1)) a)")
        machine = KCFAMachine(program, 1)
        config = machine.initial()
        roots = config_roots(config)
        assert roots == set()  # initial config has no free variables
        live = reachable_addresses(roots, FrozenStore())
        assert live == set()
        assert len(collect(config, FrozenStore())) == 0


class TestFJGC:
    def test_oo_identity_precision_win(self):
        """§8's hypothesis, confirmed: 0CFA+GC proves the OO identity
        program returns exactly a B."""
        program = parse_fj(OO_IDENTITY)
        plain = analyze_fj_kcfa(program, 0)
        collected = analyze_fj_kcfa_gc(program, 0)
        plain_classes = {o.classname for o in plain.halt_values}
        gc_classes = {o.classname for o in collected.halt_values}
        assert plain_classes == {"A", "B"}
        assert gc_classes == {"B"}

    @pytest.mark.parametrize("name", list(ALL_EXAMPLES))
    @pytest.mark.parametrize("k", [0, 1])
    def test_gc_covers_concrete_result(self, name, k):
        program = parse_fj(ALL_EXAMPLES[name])
        concrete = run_fj(program)
        result = analyze_fj_kcfa_gc(program, k)
        classes = {o.classname for o in result.halt_values}
        assert concrete.value.classname in classes

    @pytest.mark.parametrize("name", list(ALL_EXAMPLES))
    def test_gc_halt_subset_of_plain(self, name):
        program = parse_fj(ALL_EXAMPLES[name])
        plain = analyze_fj_kcfa(program, 1)
        collected = analyze_fj_kcfa_gc(program, 1)
        plain_classes = {o.classname for o in plain.halt_values}
        gc_classes = {o.classname for o in collected.halt_values}
        assert gc_classes <= plain_classes

    def test_gc_call_graph_subset(self):
        program = parse_fj(ALL_EXAMPLES["dispatch"])
        plain = analyze_fj_kcfa(program, 1)
        collected = analyze_fj_kcfa_gc(program, 1)
        for label, targets in collected.invoke_targets.items():
            assert targets <= plain.invoke_targets.get(label,
                                                       frozenset())

    def test_kont_chain_kept_alive(self):
        # deep call chains: continuations must survive collection
        program = parse_fj(ALL_EXAMPLES["linked_list"])
        result = analyze_fj_kcfa_gc(program, 1)
        concrete = run_fj(program)
        classes = {o.classname for o in result.halt_values}
        assert concrete.value.classname in classes
