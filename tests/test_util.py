"""Tests for the worklist engines and other shared infrastructure."""

import pytest

from repro.util.fixpoint import DependencyWorklist, Worklist


class TestWorklist:
    def test_fifo_order(self):
        worklist = Worklist([1, 2, 3])
        assert [worklist.pop() for _ in range(3)] == [1, 2, 3]

    def test_lifo_order(self):
        worklist = Worklist([1, 2, 3], lifo=True)
        assert [worklist.pop() for _ in range(3)] == [3, 2, 1]

    def test_dedup(self):
        worklist = Worklist()
        assert worklist.add(1) is True
        assert worklist.add(1) is False
        assert len(worklist) == 1

    def test_add_all_counts(self):
        worklist = Worklist([1])
        assert worklist.add_all([1, 2, 3]) == 2

    def test_seen_accumulates(self):
        worklist = Worklist([1, 2])
        worklist.pop()
        assert worklist.seen == {1, 2}

    def test_reset_seen(self):
        worklist = Worklist([1])
        worklist.pop()
        worklist.reset_seen()
        assert worklist.add(1) is True

    def test_bool(self):
        worklist = Worklist()
        assert not worklist
        worklist.add("x")
        assert worklist

    def test_force_requeues_a_seen_item(self):
        worklist = Worklist([1])
        worklist.pop()
        assert worklist.add(1) is False  # dedup vs. seen...
        worklist.force(1)                # ...but force overrides it
        assert worklist.pop() == 1

    def test_force_deduplicates_while_pending(self):
        worklist = Worklist([1, 2])
        worklist.force(1)
        worklist.force(1)
        assert len(worklist) == 2
        worklist.pop()  # 1 leaves the queue...
        worklist.force(1)  # ...so it may be forced back in
        assert len(worklist) == 2

    def test_force_uses_persistent_pending_set(self):
        """The pending set survives pops — no O(n) rebuild per call."""
        worklist = Worklist(range(100))
        worklist.pop()
        worklist.force(0)
        worklist.force(50)  # still queued: ignored
        assert len(worklist) == 100
        assert worklist._pending == set(range(100))


class TestDependencyWorklist:
    def test_basic_flow(self):
        worklist = DependencyWorklist()
        worklist.add("config-a")
        item = worklist.pop()
        worklist.record_reads(item, ["addr1", "addr2"])
        assert not worklist
        assert worklist.dirty(["addr1"]) == 1
        assert worklist.pop() == "config-a"

    def test_dirty_unknown_address_noop(self):
        worklist = DependencyWorklist()
        assert worklist.dirty(["nowhere"]) == 0

    def test_no_duplicate_pending(self):
        worklist = DependencyWorklist()
        worklist.add("c")
        worklist.pop()
        worklist.record_reads("c", ["a"])
        worklist.dirty(["a"])
        worklist.dirty(["a"])  # still pending: not enqueued twice
        assert len(worklist) == 1

    def test_seen_is_monotone(self):
        worklist = DependencyWorklist()
        worklist.add("x")
        worklist.add("y")
        assert worklist.seen == {"x", "y"}
        worklist.pop()
        assert worklist.seen == {"x", "y"}

    def test_readd_of_seen_config_rejected(self):
        worklist = DependencyWorklist()
        worklist.add("x")
        worklist.pop()
        assert worklist.add("x") is False

    def test_multiple_readers(self):
        worklist = DependencyWorklist()
        for config in ("a", "b"):
            worklist.add(config)
            worklist.pop()
            worklist.record_reads(config, ["shared"])
        assert worklist.dirty(["shared"]) == 2


class TestGensymCollisionFreedom:
    def test_cps_names_do_not_collide_with_alpha(self):
        """The pipeline shares one factory: a user variable named k
        must never alias a generated continuation variable."""
        from repro.scheme.cps_transform import compile_program
        program = compile_program(
            "((lambda (k rv j) (+ k rv j)) 1 2 3)")
        # Program construction validates unique binders; reaching here
        # is the assertion.  The renamed user k and the generated
        # continuation k are distinct names:
        k_named = [name for name in program.variables
                   if name.startswith("k")]
        assert len(k_named) == len(set(k_named)) >= 2

    def test_gensym_above_scans_existing_names(self):
        from repro.scheme.cps_transform import cps_convert
        from repro.scheme.desugar import desugar_expression
        from repro.scheme.alpha import alpha_rename
        exp = alpha_rename(desugar_expression(
            "((lambda (x) x) ((lambda (y) y) 1))"))
        program = cps_convert(exp)  # no factory passed: must rescan
        names = program.variables
        assert len(names) == len(set(names))
