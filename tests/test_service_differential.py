"""Differential suite: the service must be byte-identical to analyze.

For random programs plus the bench suite, the server's rendered
report — produced in a worker process, streamed back over the NDJSON
protocol — must equal the output of in-process
``python -m repro analyze`` *exactly*, for every Scheme analysis ×
values-domain combination, across context depths, report selections
and the simplify flag.  Any drift between the serving path and the
one-shot path is a correctness bug, not a formatting nit: the cache
stores these bytes and replays them to future clients.
"""

from __future__ import annotations

import pytest

from shared_corpus import EXPLODES, random_source as _random_source, \
    small_sources

from repro.__main__ import main
from repro.benchsuite.programs import BY_NAME
from repro.service.client import ServiceClient
from repro.service.jobs import FJ_ANALYSES, SCHEME_ANALYSES, \
    VALUE_MODES
from repro.service.server import AnalysisServer

#: Small programs crossed with the *full* analysis × domain matrix —
#: the same corpus the golden suite pins (tests/shared_corpus.py).
SMALL = small_sources()

#: Larger suite programs, checked on the polynomial analyses.
LARGE = ("sat", "regex", "interp", "scm2java", "scm2c")


@pytest.fixture(scope="module")
def client():
    server = AnalysisServer(port=0, workers=2).start()
    with ServiceClient(port=server.port) as connection:
        yield connection
    server.stop()


def analyze_output(tmp_path, capsys, source: str, *flags: str) -> str:
    """The exact bytes ``python -m repro analyze`` prints."""
    path = tmp_path / "prog.scm"
    path.write_text(source, encoding="utf-8")
    capsys.readouterr()
    assert main(["analyze", str(path), *flags]) == 0
    return capsys.readouterr().out


class TestFullMatrix:
    @pytest.mark.parametrize("values", VALUE_MODES)
    @pytest.mark.parametrize("analysis", SCHEME_ANALYSES)
    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_byte_identical(self, name, analysis, values, client,
                            tmp_path, capsys):
        if (name, analysis) in EXPLODES:
            pytest.skip("naive driver explodes here by design")
        source = SMALL[name]
        expected = analyze_output(
            tmp_path, capsys, source, "--analysis", analysis,
            "-n", "1", "--values", values, "--timeout", "120")
        final = client.submit(source=source, analysis=analysis,
                              context=1, values=values, timeout=120.0)
        assert final["status"] == "ok", final.get("error")
        assert final["stdout"] == expected


class TestSuitePrograms:
    @pytest.mark.parametrize("analysis", ("mcfa", "zero"))
    @pytest.mark.parametrize("name", LARGE)
    def test_byte_identical(self, name, analysis, client, tmp_path,
                            capsys):
        source = BY_NAME[name].source
        expected = analyze_output(
            tmp_path, capsys, source, "--analysis", analysis,
            "-n", "1", "--timeout", "120")
        final = client.submit(source=source, analysis=analysis,
                              context=1, timeout=120.0)
        assert final["status"] == "ok", final.get("error")
        assert final["stdout"] == expected


class TestOptionAxes:
    @pytest.mark.parametrize("context", (0, 1, 2))
    def test_context_sweep(self, context, client, tmp_path, capsys):
        source = SMALL["eta"]
        expected = analyze_output(
            tmp_path, capsys, source, "--analysis", "mcfa",
            "-n", str(context), "--timeout", "120")
        final = client.submit(source=source, analysis="mcfa",
                              context=context, timeout=120.0)
        assert final["status"] == "ok", final.get("error")
        assert final["stdout"] == expected

    @pytest.mark.parametrize("report", ("flow", "inlining", "envs"))
    def test_report_selection(self, report, client, tmp_path, capsys):
        source = SMALL["rand7"]
        expected = analyze_output(
            tmp_path, capsys, source, "--analysis", "kcfa", "-n", "1",
            "--report", report, "--timeout", "120")
        final = client.submit(source=source, analysis="kcfa",
                              context=1, report=report, timeout=120.0)
        assert final["status"] == "ok", final.get("error")
        assert final["stdout"] == expected

    def test_simplify_flag(self, client, tmp_path, capsys):
        source = SMALL["map"]
        expected = analyze_output(
            tmp_path, capsys, source, "--analysis", "mcfa", "-n", "1",
            "--simplify", "--timeout", "120")
        final = client.submit(source=source, analysis="mcfa",
                              context=1, simplify=True, timeout=120.0)
        assert final["status"] == "ok", final.get("error")
        assert final["stdout"] == expected


class TestRandomPool:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_programs_mcfa(self, seed, client, tmp_path,
                                  capsys):
        source = _random_source(seed, 4)
        expected = analyze_output(
            tmp_path, capsys, source, "--analysis", "mcfa", "-n", "1",
            "--timeout", "120")
        final = client.submit(source=source, analysis="mcfa",
                              context=1, timeout=120.0)
        assert final["status"] == "ok", final.get("error")
        assert final["stdout"] == expected


class TestFJMatrix:
    """Featherweight Java flows through the same job core: the
    server's bytes must equal ``analyze``'s for every registered FJ
    analysis (including the post-kernel policies)."""

    def _fj_sources(self):
        from repro.fj.examples import ALL_EXAMPLES
        return {"pairs": ALL_EXAMPLES["pairs"],
                "oo_identity": ALL_EXAMPLES["oo_identity"]}

    @pytest.mark.parametrize("analysis", FJ_ANALYSES)
    @pytest.mark.parametrize("name", ("pairs", "oo_identity"))
    def test_byte_identical(self, name, analysis, client, tmp_path,
                            capsys):
        source = self._fj_sources()[name]
        path = tmp_path / "prog.java"
        path.write_text(source, encoding="utf-8")
        capsys.readouterr()
        assert main(["analyze", str(path), "--analysis", analysis,
                     "-n", "1", "--timeout", "120"]) == 0
        expected = capsys.readouterr().out
        assert expected.startswith("program:")
        final = client.submit(source=source, analysis=analysis,
                              context=1, timeout=120.0)
        assert final["status"] == "ok", final.get("error")
        assert final["stdout"] == expected
