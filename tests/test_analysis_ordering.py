"""Tests for §6.1's observations about comparing CFAs.

"CFAs are not totally ordered by either speed or precision for all
programs... given the output of two CFAs, it might not always be
possible to say one is more precise than another."  These tests pin
the comparisons that *do* hold and document one that does not.
"""

import pytest

from repro.analysis import (
    analyze_kcfa, analyze_mcfa, analyze_poly_kcfa, analyze_zerocfa,
)
from repro.metrics.precision import flow_comparison
from repro.scheme.cps_transform import compile_program


class TestOrderingsThatHold:
    """Refinement relations the theory predicts, checked per-site."""

    SOURCES = [
        "(define (id x) x) (cons (id 1) (id 2))",
        """
        (define (noise) 0)
        (define (pick f) (noise) f)
        (cons ((pick (lambda (a) a)) 1) ((pick (lambda (b) b)) 2))
        """,
        """
        (define (apply1 f x) (f x))
        (cons (apply1 (lambda (u) u) 1)
              (apply1 (lambda (w) w) 2))
        """,
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_k1_refines_k0(self, source):
        program = compile_program(source)
        comparison = flow_comparison(analyze_kcfa(program, 1),
                                     analyze_zerocfa(program))
        assert comparison.left_at_least_as_precise

    @pytest.mark.parametrize("source", SOURCES)
    def test_m1_refines_m0(self, source):
        program = compile_program(source)
        comparison = flow_comparison(analyze_mcfa(program, 1),
                                     analyze_mcfa(program, 0))
        assert comparison.left_at_least_as_precise

    @pytest.mark.parametrize("source", SOURCES)
    def test_poly1_refines_poly0(self, source):
        program = compile_program(source)
        comparison = flow_comparison(analyze_poly_kcfa(program, 1),
                                     analyze_poly_kcfa(program, 0))
        assert comparison.left_at_least_as_precise

    @pytest.mark.parametrize("source", SOURCES)
    def test_m1_refines_poly1(self, source):
        """On these programs the top-m-frames abstraction dominates
        the last-k-calls one (the §6 argument)."""
        program = compile_program(source)
        comparison = flow_comparison(analyze_mcfa(program, 1),
                                     analyze_poly_kcfa(program, 1))
        assert comparison.left_at_least_as_precise

    @pytest.mark.parametrize("source", SOURCES)
    def test_m1_matches_k1_here(self, source):
        program = compile_program(source)
        comparison = flow_comparison(analyze_kcfa(program, 1),
                                     analyze_mcfa(program, 1))
        assert comparison.equal


class TestMetricsAcrossLevels:
    def test_inlinings_weakly_monotone_in_m(self):
        source = """
        (define (noise) 0)
        (define (wrap f) (noise) (lambda (v) (f v)))
        (cons ((wrap (lambda (a) a)) 1) ((wrap (lambda (b) b)) 2))
        """
        program = compile_program(source)
        counts = [analyze_mcfa(program, m).supported_inlinings()
                  for m in range(4)]
        assert all(b >= a for a, b in zip(counts, counts[1:]))

    def test_steps_grow_with_context_depth_on_polyvariant_code(self):
        source = """
        (define (compose f g) (lambda (x) (f (g x))))
        (define (id v) v)
        ((compose id (compose id id)) 1)
        """
        program = compile_program(source)
        s1 = analyze_kcfa(program, 1).steps
        s3 = analyze_kcfa(program, 3).steps
        assert s3 >= s1

    def test_zerocfa_is_cheapest_on_suite_overall(self, suite_compiled):
        """§6.1's point in action: not even *speed* totally orders
        analyses per-program (0CFA's merging can trigger extra
        dependency re-runs), but in aggregate 0CFA is cheapest."""
        zero_total = 0
        k1_total = 0
        per_program_wins = 0
        for name, program in suite_compiled.items():
            zero = analyze_zerocfa(program).steps
            k1 = analyze_kcfa(program, 1).steps
            zero_total += zero
            k1_total += k1
            if zero <= k1:
                per_program_wins += 1
        assert zero_total < k1_total
        assert per_program_wins >= 5  # wins on most, not always all


class TestHigherK:
    def test_k2_sees_through_one_wrapper(self):
        """One intervening wrapper defeats k=1 but not k=2."""
        source = """
        (define (indirect f x) (f x))
        (define (id v) v)
        (cons (indirect id 1) (indirect id 2))
        """
        program = compile_program(source)
        from repro.analysis import AConst
        k1 = analyze_kcfa(program, 1)
        k2 = analyze_kcfa(program, 2)
        # k=1 merges v's bindings (both calls to id come from the
        # same site inside indirect); k=2 keeps them apart.
        v_flows_k1 = sorted(
            len(k1.store.get(addr)) for addr in k1.store.addresses()
            if addr[0].startswith("v"))
        v_flows_k2 = sorted(
            len(k2.store.get(addr)) for addr in k2.store.addresses()
            if addr[0].startswith("v"))
        assert max(v_flows_k1) == 2
        assert max(v_flows_k2) == 1

    def test_m2_sees_through_one_wrapper(self):
        source = """
        (define (indirect f x) (f x))
        (define (id v) v)
        (cons (indirect id 1) (indirect id 2))
        """
        program = compile_program(source)
        m2 = analyze_mcfa(program, 2)
        v_flows = sorted(
            len(m2.store.get(addr)) for addr in m2.store.addresses()
            if addr[0].startswith("v"))
        assert max(v_flows) == 1
