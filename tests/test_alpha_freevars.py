"""Tests for alpha-renaming and free-variable analysis."""

import pytest

from repro.errors import DesugarError
from repro.scheme.alpha import alpha_rename, check_unique_binders
from repro.scheme.ast import App, Lam, Let, Letrec, Quote, Var, walk
from repro.scheme.desugar import desugar_expression, desugar_program
from repro.scheme.freevars import free_vars, is_closed
from repro.scheme.interp import evaluate
from repro.util.gensym import GensymFactory


def _binders(exp):
    names = []
    for node in walk(exp):
        if isinstance(node, Lam):
            names.extend(node.params)
        elif isinstance(node, Let):
            names.append(node.name)
        elif isinstance(node, Letrec):
            names.extend(name for name, _ in node.bindings)
    return names


class TestFreeVars:
    def test_var_is_free(self):
        assert free_vars(Var("x")) == {"x"}

    def test_quote_closed(self):
        assert free_vars(Quote(42)) == frozenset()

    def test_lambda_binds(self):
        exp = desugar_expression("(lambda (x) (cons x y))")
        assert free_vars(exp) == {"y"}

    def test_let_value_scope(self):
        exp = desugar_expression("(let ((x y)) x)")
        assert free_vars(exp) == {"y"}

    def test_letrec_binds_in_rhs(self):
        exp = desugar_expression(
            "(letrec ((f (lambda (n) (f (g n))))) f)")
        assert free_vars(exp) == {"g"}

    def test_app_unions(self):
        exp = desugar_expression("(f x y)")
        assert free_vars(exp) == {"f", "x", "y"}

    def test_if_unions(self):
        exp = desugar_expression("(if a b c)")
        assert free_vars(exp) == {"a", "b", "c"}

    def test_is_closed(self):
        assert is_closed(desugar_expression("(lambda (x) x)"))
        assert not is_closed(desugar_expression("(lambda (x) y)"))


class TestAlphaRename:
    def test_binders_become_unique(self):
        exp = desugar_expression(
            "(lambda (x) ((lambda (x) x) x))")
        renamed = alpha_rename(exp)
        binders = _binders(renamed)
        assert len(binders) == len(set(binders))
        check_unique_binders(renamed)

    def test_preserves_meaning(self):
        source = "(let ((x 2)) (let ((x (* x x))) (+ x 1)))"
        exp = desugar_expression(source)
        assert evaluate(alpha_rename(exp)) == evaluate(exp) == 5

    def test_stems_preserved(self):
        exp = desugar_expression("(lambda (counter) counter)")
        renamed = alpha_rename(exp)
        assert GensymFactory.base_of(renamed.params[0]) == "counter"

    def test_free_variables_untouched(self):
        exp = desugar_expression("(lambda (x) (free-one x))")
        renamed = alpha_rename(exp)
        assert "free-one" in free_vars(renamed)

    def test_letrec_mutual_references_renamed_consistently(self):
        exp = desugar_program("""
            (define (even? n) (if (= n 0) #t (odd? (- n 1))))
            (define (odd? n) (if (= n 0) #f (even? (- n 1))))
            (even? 4)
        """)
        renamed = alpha_rename(exp)
        assert is_closed(renamed)
        assert evaluate(renamed) is True

    def test_check_unique_binders_rejects_duplicates(self):
        exp = desugar_expression("(lambda (x) (lambda (x) x))")
        with pytest.raises(DesugarError):
            check_unique_binders(exp)

    def test_quote_untouched(self):
        exp = desugar_expression("'(a b c)")
        assert alpha_rename(exp) is exp


class TestGensym:
    def test_fresh_names_distinct(self):
        factory = GensymFactory()
        names = {factory.fresh("k") for _ in range(100)}
        assert len(names) == 100

    def test_is_generated(self):
        factory = GensymFactory()
        assert GensymFactory.is_generated(factory.fresh("x"))
        assert not GensymFactory.is_generated("x")

    def test_base_of_roundtrip(self):
        factory = GensymFactory()
        assert GensymFactory.base_of(factory.fresh("loop")) == "loop"

    def test_regenerated_names_stay_clean(self):
        factory = GensymFactory()
        once = factory.fresh("x")
        again = factory.fresh(once)
        assert GensymFactory.base_of(again) == "x"
