"""The pushdown summary rep: precision pins, containment, soundness.

Four families of checks on the ``pushdown`` analysis (the kernel's
:class:`~repro.analysis.kernel.SummaryEnv` rep):

* **precision pins** — the paper's §6 identity example with exact
  points-to sets: entry summaries keep ``(id 3)`` and ``(id 4)``
  apart where 0CFA merges them, and keep them apart through an
  eta-expanded wrapper that defeats k-CFA at k = 1 (one more wrapper
  defeats any fixed k; the summary rep has no k to defeat);
* **containment differential** — on every §6.2 suite program the
  pushdown flow is contained in shared-env k-CFA at k = 0, and at
  k = 1 everywhere except the documented heap-capture leak (see
  :data:`KNOWN_HEAP_LEAK_1CFA`);
* **α-containment soundness** — against the concrete stack-policy
  machine on the whole suite and on generated random programs, via
  :func:`~repro.analysis.abstraction.check_summary_soundness`;
* **cost envelope** — the ``worst<n>`` ladder that is exponential for
  k-CFA stays *linear* in reachable configurations, and the
  machinery stays honest (the specializer declines the rep, plain
  and interned domains agree byte for byte).
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro import compile_program
from repro.analysis.abstraction import check_summary_soundness
from repro.analysis.domains import (
    AConst, APair, BASIC, FClo, KClo, SClo, SCont,
)
from repro.analysis.registry import registry, run_analysis
from repro.benchsuite.programs import BY_NAME, SUITE
from repro.concrete import run_flat
from repro.generators.random_programs import random_program
from repro.generators.worstcase import worst_case_program
from repro.service.jobs import render_reports
from repro.util.gensym import GensymFactory

SUITE_NAMES = tuple(program.name for program in SUITE)

#: Suite programs where pushdown ⊆ kcfa(1) does *not* hold.  CFA2 and
#: 1CFA are incomparable: the summary rep gives heap-escaping bindings
#: (variables captured by nested lambdas — ``eta`` is built of
#: curry/compose combinators, i.e. of captures) a single context,
#: while kcfa(1)'s shared environments keep captured bindings apart by
#: binding time.  ``test_eta_leak_is_exactly_the_heap`` pins the other
#: side of the trade so this set cannot rot silently.
KNOWN_HEAP_LEAK_1CFA = frozenset({"eta"})

#: The paper's §6 identity example.
IDENTITY = ("(define (id x) x)"
            " (let* ((a (id 3)) (b (id 4))) (cons a b))")

#: The same example eta-expanded once: both ``id`` applications now
#: happen at the *same* call site inside ``apply1``, so a k = 1
#: call-site window merges them — the §6 \"one intervening call per
#: rung\" story in its smallest form.
WRAPPED = ("(define (id x) x)"
           " (define (apply1 f v) (f v))"
           " (let* ((a (apply1 id 3)) (b (apply1 id 4)))"
           "   (cons a b))")


@lru_cache(maxsize=None)
def _suite_program(name: str):
    return compile_program(BY_NAME[name].source)


@lru_cache(maxsize=None)
def _pushdown(name: str):
    return run_analysis("pushdown", _suite_program(name), 1)


def _proj(values):
    """Forget context details so flows from different env reps become
    comparable: closures by lambda label, pairs by field names."""
    out = set()
    for value in values:
        if isinstance(value, (KClo, FClo, SClo, SCont)):
            out.add(("lam", value.lam.label))
        elif isinstance(value, AConst):
            out.add(("const", type(value.datum).__name__,
                     repr(value.datum)))
        elif value is BASIC:
            out.add("basic")
        elif isinstance(value, APair):
            out.add(("pair", value.car[0], value.cdr[0]))
    return out


def _leaks(finer, coarser, program):
    """Names where *finer*'s flow is NOT contained in *coarser*'s."""
    bad = []
    for name in sorted(program.variables):
        extra = _proj(finer.flow_of(name)) - _proj(coarser.flow_of(name))
        if extra:
            bad.append((name, sorted(map(repr, extra))[:3]))
    if not _proj(finer.halt_values) <= _proj(coarser.halt_values):
        bad.append(("HALT", None))
    return bad


def _flows_by_base(program, result, bases):
    """Union flows keyed by pre-gensym base name."""
    flows: dict = {}
    for name in program.variables:
        base = GensymFactory.base_of(name)
        if base in bases:
            flows.setdefault(base, set()).update(result.flow_of(name))
    return flows


# -- precision pins (§6 identity) -----------------------------------------


class TestPrecisionPins:
    def test_identity_returns_stay_apart(self):
        program = compile_program(IDENTITY)
        result = run_analysis("pushdown", program, 1)
        flows = _flows_by_base(program, result, ("a", "b", "x", "id"))
        assert flows["a"] == {AConst(3)}
        assert flows["b"] == {AConst(4)}
        # The parameter itself flows both — per *entry*, not merged
        # into one context:
        assert flows["x"] == {AConst(3), AConst(4)}
        assert all(isinstance(value, SClo) for value in flows["id"])
        # Two abstract entries of id: one per call edge.
        (id_label,) = {value.lam.label for value in flows["id"]}
        assert len(result.entries[id_label]) == 2

    def test_zero_cfa_merges_the_same_example(self):
        program = compile_program(IDENTITY)
        result = run_analysis("zero", program, 1)
        flows = _flows_by_base(program, result, ("a", "b"))
        assert flows["a"] == flows["b"] == {AConst(3), AConst(4)}

    def test_wrapper_defeats_the_window_not_the_summaries(self):
        """One eta-expansion pushes the distinction out of kcfa(1)'s
        window; entry summaries are keyed on arguments, not windows,
        so pushdown needs no extra budget (and kcfa needs k = 2)."""
        program = compile_program(WRAPPED)
        separated = {"a": {AConst(3)}, "b": {AConst(4)}}
        merged = {"a": {AConst(3), AConst(4)},
                  "b": {AConst(3), AConst(4)}}
        for analysis, parameter, expected in (
                ("pushdown", 1, separated),
                ("kcfa", 1, merged),
                ("kcfa", 2, separated)):
            result = run_analysis(analysis, program, parameter)
            flows = _flows_by_base(program, result, ("a", "b"))
            assert flows == expected, (analysis, parameter)


# -- containment differential ---------------------------------------------


class TestContainment:
    @pytest.mark.parametrize("name", SUITE_NAMES)
    def test_contained_in_0cfa(self, name):
        program = _suite_program(name)
        coarser = run_analysis("kcfa", program, 0)
        assert not _leaks(_pushdown(name), coarser, program)

    @pytest.mark.parametrize(
        "name", [name for name in SUITE_NAMES
                 if name not in KNOWN_HEAP_LEAK_1CFA])
    def test_contained_in_1cfa(self, name):
        program = _suite_program(name)
        coarser = run_analysis("kcfa", program, 1)
        assert not _leaks(_pushdown(name), coarser, program)

    def test_eta_leak_is_exactly_the_heap(self):
        """The documented k = 1 exception, pinned from both sides:
        on ``eta`` kcfa(1) dominates pushdown (it is contained in it
        everywhere), and pushdown really does leak — if a future
        precision change empties the leak, this test says to move
        ``eta`` into the plain containment set above."""
        program = _suite_program("eta")
        pushdown = _pushdown("eta")
        kcfa1 = run_analysis("kcfa", program, 1)
        assert not _leaks(kcfa1, pushdown, program), \
            "kcfa(1) no longer contained in pushdown on eta"
        leaks = _leaks(pushdown, kcfa1, program)
        assert leaks, ("pushdown ⊆ kcfa(1) now holds on eta — "
                       "remove it from KNOWN_HEAP_LEAK_1CFA")
        # Note the leak is *downstream* of the heap, never at it: a
        # heap binder's union flow agrees between the two analyses by
        # construction (both join over all contexts); what grows is
        # the flow of stack binders computed from reads of merged
        # heap values.  kcfa(1)'s containment in pushdown above is
        # the evidence that call/return matching itself is exact —
        # the trade is confined to captures.


# -- α-containment soundness ----------------------------------------------


class TestSoundness:
    @pytest.mark.parametrize("name", SUITE_NAMES)
    def test_sound_on_the_suite(self, name):
        concrete = run_flat(_suite_program(name), record_trace=True,
                            env_policy="stack")
        report = check_summary_soundness(_pushdown(name), concrete)
        assert report, (name, report.violations[:3])
        assert report.states_checked and report.bindings_checked

    @pytest.mark.parametrize("seed", (1, 5, 9, 13, 23, 29, 41, 57,
                                      71, 91, 104, 131))
    def test_sound_on_random_programs(self, seed):
        program = random_program(seed, 3)
        concrete = run_flat(program, record_trace=True,
                            env_policy="stack")
        result = run_analysis("pushdown", program, 1)
        report = check_summary_soundness(result, concrete)
        assert report, (seed, report.violations[:3])


# -- cost envelope ---------------------------------------------------------


class TestCost:
    def test_worst_ladder_is_linear(self):
        """The VH-M ``worst<n>`` term family is exponential for
        shared-env k-CFA (k >= 1); the summary rep's env-less user
        closures keep it to a constant number of configurations per
        rung."""
        counts = {depth: run_analysis(
            "pushdown", worst_case_program(depth), 1).config_count
            for depth in (4, 8, 12)}
        assert counts[8] - counts[4] == counts[12] - counts[8]
        assert counts[12] <= 8 * 12  # flat-cost envelope


# -- machinery stays honest ------------------------------------------------


class TestMachinery:
    def test_specializer_declines_and_the_knob_says_so(self):
        spec = registry().get("pushdown")
        assert spec.specialized is False
        assert spec.env_rep == "summary"
        program = compile_program(IDENTITY)
        forced = spec.run(program, 1, specialize=True)
        declined = spec.run(program, 1, specialize=False)
        assert forced.engine_path == declined.engine_path == "generic"
        assert render_reports(program, forced) == \
            render_reports(program, declined)

    def test_context_free_parameter_recorded_as_zero(self):
        program = compile_program(IDENTITY)
        assert run_analysis("pushdown", program, 3).parameter == 0

    @pytest.mark.parametrize("name", ("eta", "map"))
    def test_plain_and_interned_agree(self, name):
        program = _suite_program(name)
        interned = run_analysis("pushdown", program, 1)
        plain = run_analysis("pushdown", program, 1, plain=True)
        assert render_reports(program, interned) == \
            render_reports(program, plain)
        assert interned.config_count == plain.config_count

    def test_entry_and_exit_tables_are_observable(self):
        """call_edges and exit summaries live on the rep after a run —
        the flat-cost bookkeeping the paper-style table reads off."""
        from repro.analysis.engine import EngineOptions, \
            run_single_store
        from repro.analysis.kernel import Recorder
        from repro.analysis.policies import summary_layout
        from repro.analysis.pushdown import SummaryMachine
        program = compile_program(IDENTITY)
        machine = SummaryMachine(program)
        run_single_store(machine, Recorder(), EngineOptions())
        rep = machine.rep
        # Two call edges into id — one per top-level application —
        # landing on two distinct entries.
        edges_per_entry = {env: edges for env, edges
                           in rep.call_edges.items()}
        assert len(edges_per_entry) >= 2
        assert all(len(edges) == 1
                   for edges in edges_per_entry.values())
        # Both entries returned: their frames carry exit summaries.
        assert rep.summaries
        # The identity program needs no heap at all — everything is
        # stack-resolvable, the CFA2 fast path.
        assert summary_layout(program).heap_names == frozenset()
