"""Tests for the FJ parser, A-normalizer and class table."""

import pytest

from repro.errors import FJSyntaxError, FJTypeError
from repro.fj import parse_fj
from repro.fj.examples import ANF_EXAMPLE, PAIRS
from repro.fj.syntax import (
    Assign, Cast, FieldAccess, Invoke, New, Return, VarExp,
)


class TestParser:
    def test_minimal_program(self):
        program = parse_fj("""
        class Main extends Object {
          Main() { super(); }
          Object main() { return this; }
        }
        """)
        assert "Main" in program.by_name
        assert program.statement_count() == 1

    def test_fields_parsed(self):
        program = parse_fj(PAIRS)
        pair = program.by_name["Pair"]
        assert pair.field_names() == ("fst", "snd")

    def test_constructor_wiring(self):
        program = parse_fj(PAIRS)
        assert program.ctor_wiring["Pair"] == (("fst", 0), ("snd", 1))

    def test_methods_get_owner(self):
        program = parse_fj(PAIRS)
        method = program.lookup_method("Pair", "swap")
        assert method.qualified_name == "Pair.swap"

    def test_comments_allowed(self):
        program = parse_fj("""
        // leading comment
        class Main extends Object {
          Main() { super(); }   // ctor
          Object main() { return this; }
        }
        """)
        assert program.statement_count() == 1

    def test_unknown_character_rejected(self):
        with pytest.raises(FJSyntaxError):
            parse_fj("class Main @ {}")

    def test_missing_extends_rejected(self):
        with pytest.raises(FJSyntaxError):
            parse_fj("class Main { Main() { super(); } }")

    def test_wrong_ctor_name_rejected(self):
        with pytest.raises(FJSyntaxError):
            parse_fj("""
            class Main extends Object {
              NotMain() { super(); }
              Object main() { return this; }
            }
            """)

    def test_empty_method_rejected(self):
        with pytest.raises(FJSyntaxError):
            parse_fj("""
            class Main extends Object {
              Main() { super(); }
              Object main() { }
            }
            """)


class TestANF:
    def test_paper_example_flattens(self):
        """return f.foo(b.bar()); becomes three statements (§4)."""
        program = parse_fj(ANF_EXAMPLE)
        main = program.lookup_method("Main", "main")
        body = main.body
        assert isinstance(body[-1], Return)
        invokes = [stmt for stmt in body
                   if isinstance(stmt, Assign)
                   and isinstance(stmt.exp, Invoke)]
        assert len(invokes) == 2  # bar then foo, in evaluation order
        assert invokes[0].exp.method == "bar"
        assert invokes[1].exp.method == "foo"

    def test_temps_added_to_locals(self):
        program = parse_fj(ANF_EXAMPLE)
        main = program.lookup_method("Main", "main")
        temp_names = [name for _type, name in main.locals
                      if name.startswith("t$")]
        assert temp_names

    def test_nested_new(self):
        program = parse_fj("""
        class Box extends Object {
          Object contents;
          Box(Object c) { super(); this.contents = c; }
        }
        class Main extends Object {
          Main() { super(); }
          Object main() {
            Box b;
            b = new Box(new Box(this));
            return b;
          }
        }
        """)
        main = program.lookup_method("Main", "main")
        news = [stmt for stmt in main.body
                if isinstance(stmt, Assign)
                and isinstance(stmt.exp, New)]
        assert len(news) == 2
        assert all(all(not arg.startswith("new")
                       for arg in stmt.exp.args) for stmt in news)

    def test_chained_field_access(self):
        program = parse_fj("""
        class Wrap extends Object {
          Object inner;
          Wrap(Object i) { super(); this.inner = i; }
        }
        class Main extends Object {
          Main() { super(); }
          Object main() {
            Wrap w;
            w = new Wrap(new Wrap(this));
            return w.inner.inner;
          }
        }
        """, entry_method="main")
        main = program.lookup_method("Main", "main")
        accesses = [stmt for stmt in main.body
                    if isinstance(stmt, Assign)
                    and isinstance(stmt.exp, FieldAccess)]
        assert len(accesses) >= 1

    def test_cast_statement(self):
        program = parse_fj("""
        class A extends Object { A() { super(); } }
        class Main extends Object {
          Main() { super(); }
          Object main() {
            Object x;
            A y;
            x = new A();
            y = (A) x;
            return y;
          }
        }
        """)
        main = program.lookup_method("Main", "main")
        casts = [stmt for stmt in main.body
                 if isinstance(stmt, Assign)
                 and isinstance(stmt.exp, Cast)]
        assert len(casts) == 1

    def test_labels_unique_across_methods(self):
        program = parse_fj(PAIRS)
        labels = list(program.stmt_by_label)
        assert len(labels) == len(set(labels))

    def test_succ_chains_bodies(self):
        program = parse_fj(PAIRS)
        main = program.lookup_method("Main", "main")
        for current, following in zip(main.body, main.body[1:]):
            assert program.succ(current.label) is following
        assert program.succ(main.body[-1].label) is None


class TestClassTableValidation:
    def test_duplicate_class_rejected(self):
        source = """
        class A extends Object { A() { super(); } }
        class A extends Object { A() { super(); } }
        class Main extends Object {
          Main() { super(); }
          Object main() { return this; }
        }
        """
        with pytest.raises(FJTypeError):
            parse_fj(source)

    def test_undefined_superclass_rejected(self):
        source = """
        class A extends Ghost { A() { super(); } }
        class Main extends Object {
          Main() { super(); }
          Object main() { return this; }
        }
        """
        with pytest.raises(FJTypeError):
            parse_fj(source)

    def test_inheritance_cycle_rejected(self):
        source = """
        class A extends B { A() { super(); } }
        class B extends A { B() { super(); } }
        class Main extends Object {
          Main() { super(); }
          Object main() { return this; }
        }
        """
        with pytest.raises(FJTypeError):
            parse_fj(source)

    def test_uninitialized_field_rejected(self):
        source = """
        class A extends Object {
          Object f;
          A() { super(); }
        }
        class Main extends Object {
          Main() { super(); }
          Object main() { return this; }
        }
        """
        with pytest.raises(FJTypeError):
            parse_fj(source)

    def test_super_arity_checked(self):
        source = """
        class A extends Object {
          Object f;
          A(Object x) { super(); this.f = x; }
        }
        class B extends A {
          B() { super(); }
        }
        class Main extends Object {
          Main() { super(); }
          Object main() { return this; }
        }
        """
        with pytest.raises(FJTypeError):
            parse_fj(source)

    def test_inherited_fields_in_order(self):
        source = """
        class A extends Object {
          Object f;
          A(Object x) { super(); this.f = x; }
        }
        class B extends A {
          Object g;
          B(Object x, Object y) { super(x); this.g = y; }
        }
        class Main extends Object {
          Main() { super(); }
          Object main() { return this; }
        }
        """
        program = parse_fj(source)
        assert program.all_fields("B") == ("f", "g")
        assert program.ctor_wiring["B"] == (("f", 0), ("g", 1))

    def test_unknown_name_in_body_rejected(self):
        source = """
        class Main extends Object {
          Main() { super(); }
          Object main() { return ghost; }
        }
        """
        with pytest.raises(FJTypeError):
            parse_fj(source)

    def test_entry_method_required(self):
        source = """
        class Main extends Object {
          Main() { super(); }
          Object other() { return this; }
        }
        """
        with pytest.raises(FJTypeError):
            parse_fj(source)

    def test_method_lookup_walks_hierarchy(self):
        program = parse_fj("""
        class A extends Object {
          A() { super(); }
          Object m() { return this; }
        }
        class B extends A { B() { super(); } }
        class Main extends Object {
          Main() { super(); }
          Object main() { return this; }
        }
        """)
        assert program.lookup_method("B", "m") is \
            program.lookup_method("A", "m")

    def test_override_shadows(self):
        program = parse_fj("""
        class A extends Object {
          A() { super(); }
          Object m() { return this; }
        }
        class B extends A {
          B() { super(); }
          Object m() { return this; }
        }
        class Main extends Object {
          Main() { super(); }
          Object main() { return this; }
        }
        """)
        assert program.lookup_method("B", "m").owner == "B"

    def test_is_subclass(self):
        program = parse_fj(PAIRS)
        assert program.is_subclass("Pair", "Object")
        assert not program.is_subclass("Object", "Pair")
        assert program.is_subclass("Pair", "Pair")
