"""Property tests for the consistent-hash ring and warm routing.

Two layers: pure ring properties (stability, minimal disruption on
node loss — seeded, 200 trials), then the live behaviour they exist
for: the same ``job_cache_key`` always lands on the same worker, whose
:class:`~repro.cache.ProgramCache` makes the repeat run warm —
observable as the per-worker ``plans_reused`` stat and byte-identical
output either way.
"""

from __future__ import annotations

import random

import pytest

from repro.cache import ProgramCache
from repro.service.sharding import HashRing

SOURCE = """
(define (compose f g) (lambda (x) (f (g x))))
(define (inc n) (+ n 1))
((compose inc inc) 5)
"""


def random_key(rng: random.Random) -> str:
    return f"key-{rng.getrandbits(64):016x}"


class TestRingProperties:
    def test_routing_ignores_insertion_order(self):
        nodes = [f"w{index}" for index in range(6)]
        forward = HashRing(nodes)
        backward = HashRing(reversed(nodes))
        rng = random.Random(7)
        for _ in range(500):
            key = random_key(rng)
            assert forward.node_for(key) == backward.node_for(key)

    def test_routing_is_deterministic_across_instances(self):
        # SHA-256 points, not hash(): a fresh ring (think: restarted
        # front door) must route every key identically.
        keys = [random_key(random.Random(11)) for _ in range(50)]
        first = {key: HashRing(["a", "b", "c"]).node_for(key)
                 for key in keys}
        second = {key: HashRing(["a", "b", "c"]).node_for(key)
                  for key in keys}
        assert first == second

    def test_removing_one_worker_remaps_only_its_keys(self):
        """The consistency property, 200 seeded trials: after one
        node dies, every key it did NOT own keeps its shard."""
        rng = random.Random(1234)
        for _ in range(200):
            nodes = [f"w{index}"
                     for index in range(rng.randint(2, 8))]
            ring = HashRing(nodes)
            keys = [random_key(rng) for _ in range(40)]
            before = {key: ring.node_for(key) for key in keys}
            assert set(before.values()) <= set(nodes)
            victim = rng.choice(nodes)
            ring.remove(victim)
            for key in keys:
                after = ring.node_for(key)
                if before[key] == victim:
                    assert after != victim  # orphans moved somewhere
                else:
                    assert after == before[key]  # everyone else stays

    def test_distribution_is_not_degenerate(self):
        # Virtual nodes must spread a small fleet's load: with 4
        # workers no shard may own less than a 5% share.
        ring = HashRing([f"w{index}" for index in range(4)])
        rng = random.Random(99)
        counts: dict[str, int] = {}
        total = 2000
        for _ in range(total):
            node = ring.node_for(random_key(rng))
            counts[node] = counts.get(node, 0) + 1
        assert len(counts) == 4
        assert min(counts.values()) >= total * 0.05

    def test_add_and_remove_are_idempotent(self):
        ring = HashRing(["a", "b"])
        ring.add("a")
        assert len(ring) == 2
        ring.remove("c")
        ring.remove("b")
        ring.remove("b")
        assert ring.nodes() == frozenset({"a"})
        assert "a" in ring and "b" not in ring

    def test_empty_ring_raises_lookup_error(self):
        ring = HashRing()
        with pytest.raises(LookupError):
            ring.node_for("anything")
        ring.add("solo")
        assert ring.node_for("anything") == "solo"
        ring.remove("solo")
        with pytest.raises(LookupError):
            ring.node_for("anything")

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)


class TestProgramCache:
    def test_lru_eviction_and_counters(self):
        cache = ProgramCache(capacity=2)
        key_a = ProgramCache.key("scheme", "(a)", False)
        key_b = ProgramCache.key("scheme", "(b)", False)
        key_c = ProgramCache.key("scheme", "(c)", False)
        assert cache.get(key_a) is None
        cache.put(key_a, "A")
        cache.put(key_b, "B")
        assert cache.get(key_a) == "A"  # refreshes a to MRU
        cache.put(key_c, "C")           # evicts b, the LRU
        assert cache.get(key_b) is None
        assert cache.get(key_a) == "A"
        assert cache.get(key_c) == "C"
        stats = cache.as_dict()
        assert stats["evictions"] == 1
        assert stats["hits"] == 3 and stats["misses"] == 2

    def test_pinned_entry_survives_overflow(self):
        cache = ProgramCache(capacity=2)
        key_a = ProgramCache.key("scheme", "(a)", False)
        key_b = ProgramCache.key("scheme", "(b)", False)
        key_c = ProgramCache.key("scheme", "(c)", False)
        cache.put(key_a, "A")
        cache.pin(key_a)
        cache.put(key_b, "B")
        cache.put(key_c, "C")  # a is the LRU but pinned: b goes
        assert cache.get(key_a) == "A"
        assert cache.get(key_b) is None
        assert cache.as_dict()["pinned"] == 1

    def test_unpin_restores_evictability(self):
        cache = ProgramCache(capacity=1)
        key_a = ProgramCache.key("scheme", "(a)", False)
        key_b = ProgramCache.key("scheme", "(b)", False)
        cache.put(key_a, "A")
        cache.pin(key_a)
        cache.pin(key_a)           # pins nest
        cache.put(key_b, "B")      # over capacity, both pinned/new
        cache.unpin(key_a)
        assert cache.get(key_a) == "A"  # one pin still holds
        cache.unpin(key_a)
        assert cache.pinned() == 0
        cache.put(key_b, "B")      # now a is fair game
        assert cache.get(key_a) is None
        assert cache.get(key_b) == "B"

    def test_all_pinned_overflows_without_eviction(self):
        # A worker hosting more sessions than cache capacity must
        # not drop a program a live session still references.
        cache = ProgramCache(capacity=1)
        key_a = ProgramCache.key("scheme", "(a)", False)
        key_b = ProgramCache.key("scheme", "(b)", False)
        cache.put(key_a, "A")
        cache.pin(key_a)
        cache.pin(key_b)           # pin lands before the program does
        cache.put(key_b, "B")
        assert len(cache) == 2          # over capacity, by design
        assert cache.as_dict()["evictions"] == 0
        assert cache.get(key_a) == "A"
        assert cache.get(key_b) == "B"

    def test_key_separates_language_source_and_simplify(self):
        base = ProgramCache.key("scheme", "(x)", False)
        assert ProgramCache.key("fj", "(x)", False) != base
        assert ProgramCache.key("scheme", "(y)", False) != base
        assert ProgramCache.key("scheme", "(x)", True) != base
        assert ProgramCache.key("scheme", "(x)", False) == base


class TestWarmRouting:
    """Live fleet: stable shard per key, observable warm reuse."""

    @pytest.fixture(scope="class")
    def server(self):
        from repro.service.server import AnalysisServer
        server = AnalysisServer(port=0, workers=2, cache=None).start()
        yield server
        server.stop()

    def test_repeat_key_lands_on_one_warm_worker(self, server):
        from repro.service.client import ServiceClient
        with ServiceClient(port=server.port) as client:
            finals = [client.submit(source=SOURCE, analysis="mcfa",
                                    context=1, timeout=30.0)
                      for _ in range(3)]
        assert [final["status"] for final in finals] == ["ok"] * 3
        # Byte-identity between the cold run and the warm reruns: the
        # cached Program is a pure value, plans only memoize.
        assert finals[1]["stdout"] == finals[0]["stdout"]
        assert finals[2]["stdout"] == finals[0]["stdout"]
        stats = server.stats_snapshot()
        assert stats["jobs"]["executed"] == 3
        busy_workers = [row for row in stats["fleet"]
                        if row["jobs"] > 0]
        # Same cache key -> same shard, all three times...
        assert len(busy_workers) == 1
        assert busy_workers[0]["jobs"] == 3
        # ...and runs 2 and 3 reused the compiled program + plans.
        assert busy_workers[0]["plans_reused"] == 2

    def test_distinct_keys_can_use_distinct_workers(self, server):
        # Not a determinism claim about *which* shard — just that
        # routing is per-key, so the fleet rows stay coherent and
        # every executed job is accounted to exactly one worker.
        from repro.service.client import ServiceClient
        with ServiceClient(port=server.port) as client:
            for index in range(4):
                source = f"((lambda (x) x) {index})"
                final = client.submit(source=source,
                                      analysis="mcfa", context=1,
                                      timeout=30.0)
                assert final["status"] == "ok"
        stats = server.stats_snapshot()
        assert sum(row["jobs"] for row in stats["fleet"]) \
            == stats["jobs"]["executed"]
