"""Fault injection against the worker fleet.

Each test wounds the service in a specific way and asserts the
documented recovery, not mere survival:

* SIGKILL a worker **mid-job** — the orphaned job re-dispatches to the
  next shard on the ring and still completes ``ok`` (counted once in
  ``executed``, once in ``redispatched``).
* client disconnects **mid-stream** — the flight retires (no leaked
  inflight entry) and the analysis result is simply dropped.
* admission queue full — followers bounce with ``busy`` and the client
  backoff loop lands the job on a later attempt.
* a ``timeout`` verdict is never written to the result cache, so
  resubmission re-runs the analysis on the fleet path too.

Kill windows are calibrated against the Van Horn–Mairson ladder:
``worst13`` under k-CFA(1) runs ≈1.4 s — wide enough to land a signal
inside, long after dispatch and well before completion.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.cache import ResultCache
from repro.generators.worstcase import worst_case_source
from repro.service.client import ServiceClient
from repro.service.jobs import JobSpec, job_cache_key
from repro.service.server import AnalysisServer

#: ≈1.4 s of k-CFA(1) work on the reference box: the kill window.
SLOW_SOURCE = worst_case_source(13)

#: The EXPTIME wall under k = 2 — guaranteed ``timeout`` verdict.
TIMEOUT_SOURCE = worst_case_source(14)

FAST_SOURCE = "(define (double x) (+ x x))\n(double 21)\n"


def _wait(predicate, deadline: float = 30.0, interval: float = 0.02):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestWorkerDeath:
    def test_kill_mid_job_redispatches_and_completes(self):
        server = AnalysisServer(port=0, workers=2, cache=None).start()
        try:
            # The ring decides the victim before we submit: the shard
            # that owns this job's cache key is the worker we kill.
            key = job_cache_key(JobSpec(source=SLOW_SOURCE,
                                        analysis="kcfa", context=1))
            victim = server._ring.node_for(key)

            running = threading.Event()
            outcome: dict[str, dict] = {}

            def on_event(event):
                if event.get("event") == "running":
                    running.set()

            def submitter():
                with ServiceClient(port=server.port) as client:
                    outcome["final"] = client.submit(
                        source=SLOW_SOURCE, analysis="kcfa",
                        context=1, timeout=300.0, on_event=on_event)

            thread = threading.Thread(target=submitter)
            thread.start()
            assert running.wait(timeout=30), "job never dispatched"
            time.sleep(0.15)  # let the worker get into the fixpoint
            server._fleet.kill(victim)
            thread.join(timeout=120)
            assert not thread.is_alive()

            final = outcome["final"]
            assert final["status"] == "ok", final.get("error")
            stats = server.stats_snapshot()
            assert stats["jobs"]["redispatched"] == 1
            assert stats["jobs"]["executed"] == 1  # not double-counted
            assert stats["jobs"]["error"] == 0
            # The dead worker left the ring and its row reports dead.
            assert victim not in server._ring
            dead = [row for row in stats["fleet"]
                    if row["worker"] == victim]
            assert dead and dead[0]["alive"] is False
            # The survivor still serves: routing fell over to it.
            with ServiceClient(port=server.port) as client:
                assert client.submit(source=FAST_SOURCE,
                                     analysis="mcfa", context=1,
                                     timeout=60.0)["status"] == "ok"
        finally:
            server.stop()


class TestClientDisconnect:
    def test_disconnect_mid_stream_retires_the_flight(self):
        server = AnalysisServer(port=0, workers=1, cache=None).start()
        try:
            raw = socket.create_connection(("127.0.0.1", server.port),
                                           timeout=10)
            raw.sendall((json.dumps(
                {"op": "submit", "id": "doomed",
                 "source": SLOW_SOURCE, "analysis": "kcfa",
                 "context": 1, "timeout": 300.0}) + "\n")
                .encode("utf-8"))
            # Read one streamed event so the disconnect happens
            # mid-conversation, then vanish without a goodbye.
            with raw.makefile("r", encoding="utf-8") as reader:
                event = json.loads(reader.readline())
            assert event["event"] in ("queued", "running")
            raw.close()

            # The analysis still runs to completion (its result is
            # dropped, not leaked): the flight must retire and the
            # counters must balance with nobody left to tell.
            assert _wait(lambda: (
                server.stats_snapshot()["jobs"]["completed"] == 1
                and server._inflight.pending() == 0), deadline=120)
            stats = server.stats_snapshot()
            assert stats["jobs"]["executed"] == 1
            assert stats["jobs"]["error"] == 0

            # And the server is still fully alive for the next client.
            with ServiceClient(port=server.port) as client:
                assert client.submit(source=FAST_SOURCE,
                                     analysis="mcfa", context=1,
                                     timeout=60.0)["status"] == "ok"
        finally:
            server.stop()


class TestAdmissionControl:
    def test_full_queue_bounces_busy_and_retry_lands(self):
        # One worker, queue depth 1: while the slow job occupies the
        # shard, any second key bound for it must bounce.
        server = AnalysisServer(port=0, workers=1, cache=None,
                                max_queue=1).start()
        try:
            slow_running = threading.Event()
            slow_outcome: dict[str, dict] = {}

            def slow_submitter():
                with ServiceClient(port=server.port) as client:
                    slow_outcome["final"] = client.submit(
                        source=SLOW_SOURCE, analysis="kcfa",
                        context=1, timeout=300.0,
                        on_event=lambda event: slow_running.set()
                        if event.get("event") == "running" else None)

            thread = threading.Thread(target=slow_submitter)
            thread.start()
            assert slow_running.wait(timeout=30)

            bounces: list[dict] = []
            with ServiceClient(port=server.port) as client:
                final = client.submit(
                    source=FAST_SOURCE, analysis="mcfa", context=1,
                    timeout=60.0,
                    on_event=lambda event: bounces.append(event)
                    if event.get("event") == "busy" else None)
            thread.join(timeout=120)

            assert final["status"] == "ok", final.get("error")
            assert slow_outcome["final"]["status"] == "ok"
            assert bounces, "queue was full yet nothing bounced"
            assert bounces[0]["worker"] == "w0"
            assert bounces[0]["retry_after"] > 0
            stats = server.stats_snapshot()
            assert stats["jobs"]["busy"] == len(bounces)
            # Bounced attempts are not executions; both jobs ran once.
            assert stats["jobs"]["executed"] == 2
            assert stats["jobs"]["submitted"] == 2 + len(bounces)
        finally:
            server.stop()

    def test_busy_event_carries_retry_contract(self):
        # Protocol shape only — no fleet needed beyond construction.
        server = AnalysisServer(port=0, workers=1, cache=None,
                                max_queue=1).start()
        try:
            with ServiceClient(port=server.port) as client:
                stats = client.stats()
            assert stats["max_queue"] == 1
        finally:
            server.stop()


class TestTimeoutsNeverCached:
    def test_fleet_path_reruns_timeouts(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        server = AnalysisServer(port=0, workers=1,
                                cache=cache).start()
        try:
            with ServiceClient(port=server.port) as client:
                first = client.submit(source=TIMEOUT_SOURCE,
                                      analysis="kcfa", context=2,
                                      timeout=1.0)
                second = client.submit(source=TIMEOUT_SOURCE,
                                       analysis="kcfa", context=2,
                                       timeout=1.0)
                stats = client.stats()
            assert first["status"] == "timeout"
            assert second["status"] == "timeout"
            assert second["cached"] is False
            # Both runs executed on the fleet; nothing was written to
            # or read from the result cache.
            assert stats["jobs"]["executed"] == 2
            assert stats["cache"]["writes"] == 0
            assert stats["cache"]["hits"] == 0
        finally:
            server.stop()


class TestStressHarness:
    def test_small_campaign_is_loss_free(self):
        from repro.service.stress import run_stress
        report = run_stress(clients=6, requests=2, distinct=3,
                            workers=2, deadline=120.0)
        assert report.completed == 12
        assert report.ok == 12
        assert report.dropped == 0
        assert report.duplicated == 0
        assert report.mismatched == 0
        assert report.verified == 12
        assert report.wall_seconds > 0
        assert report.p99 >= report.p50
        jobs = report.server_stats["jobs"]
        # The stats identity under load, busy bounces included (the
        # in-process stress server runs cache-less: zero hits).
        hits = (report.server_stats.get("cache") or {}).get("hits", 0)
        assert jobs["executed"] + jobs["coalesced"] + jobs["busy"] \
            + hits == jobs["submitted"]

    def test_report_serializes(self):
        from repro.service.stress import StressReport
        report = StressReport(endpoint="x", clients=1,
                              requests_per_client=1, distinct=1,
                              workers=1)
        row = report.as_dict()
        assert "latencies" not in row
        assert row["latency_samples"] == 0
