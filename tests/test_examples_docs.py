"""docs/examples.md must not drift from the example scripts.

Three directions:

* completeness — every ``examples/*.py`` script has a ``## <name>``
  section in docs/examples.md;
* honesty — every section heading names a script that exists;
* liveness — every script runs to completion with exit status 0
  (slow scripts get scaled-down arguments).
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"
DOCS = REPO / "docs" / "examples.md"

#: Scripts whose default settings are deliberately slow get fast
#: arguments here; everything else runs bare.
FAST_ARGS: dict[str, list[str]] = {
    "worst_case_race.py": ["0.05"],
}


def example_scripts() -> list[str]:
    return sorted(path.name for path in EXAMPLES.glob("*.py"))


def documented_sections() -> list[str]:
    text = DOCS.read_text(encoding="utf-8")
    return re.findall(r"^## (\S+\.py)$", text, flags=re.MULTILINE)


def test_docs_file_exists():
    assert DOCS.is_file(), "docs/examples.md is missing"


def test_every_example_is_documented():
    missing = set(example_scripts()) - set(documented_sections())
    assert not missing, \
        f"examples missing from docs/examples.md: {sorted(missing)}"


def test_every_documented_example_exists():
    stale = set(documented_sections()) - set(example_scripts())
    assert not stale, \
        f"docs/examples.md lists unknown examples: {sorted(stale)}"


def test_no_duplicate_sections():
    sections = documented_sections()
    assert len(sections) == len(set(sections))


@pytest.mark.parametrize("script", example_scripts())
def test_example_runs_clean(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script),
         *FAST_ARGS.get(script, [])],
        env=env, capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, \
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    assert result.stdout.strip(), f"{script} printed nothing"
