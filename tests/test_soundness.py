"""Machine-checked soundness (paper §3.5) for every functional
analysis, on hand-picked and suite programs."""

import pytest

from repro.analysis import (
    analyze_kcfa, analyze_kcfa_naive, analyze_mcfa, analyze_poly_kcfa,
)
from repro.analysis.abstraction import (
    check_flat_soundness, check_kcfa_soundness,
)
from repro.concrete import run_flat, run_shared
from repro.scheme.cps_transform import compile_program

SOURCES = {
    "const": "42",
    "apply": "((lambda (x y) (+ x y)) 1 2)",
    "closures": """
        (define (make-adder n) (lambda (x) (+ x n)))
        (cons ((make-adder 1) 10) ((make-adder 2) 20))
    """,
    "fact": ("(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))"
             "(fact 4)"),
    "lists": """
        (define (map2 f xs)
          (if (null? xs) '() (cons (f (car xs)) (map2 f (cdr xs)))))
        (map2 (lambda (v) (cons v v)) (list 1 2))
    """,
    "hof": """
        (define (compose f g) (lambda (x) (f (g x))))
        ((compose (lambda (a) (cons a 1)) (lambda (b) (cons 2 b))) 's)
    """,
    "branching": """
        (define (pick b) (if b (lambda (x) (+ x 1)) (lambda (y) (* y 2))))
        (cons ((pick #t) 3) ((pick (= 1 2)) 4))
    """,
    "intervening": """
        (define (noise) 0)
        (define (identity x) (noise) x)
        (cons (identity 3) (identity 4))
    """,
}


@pytest.mark.parametrize("name", SOURCES)
@pytest.mark.parametrize("k", [0, 1, 2])
class TestKCFASoundness:
    def test_single_threaded(self, name, k):
        program = compile_program(SOURCES[name])
        concrete = run_shared(program, record_trace=True,
                              time_mode="history")
        result = analyze_kcfa(program, k)
        report = check_kcfa_soundness(result, concrete)
        assert report, report.violations[:5]


@pytest.mark.parametrize("name", SOURCES)
@pytest.mark.parametrize("m", [0, 1, 2])
class TestMCFASoundness:
    def test_flat_stack(self, name, m):
        program = compile_program(SOURCES[name])
        concrete = run_flat(program, record_trace=True,
                            env_policy="stack")
        result = analyze_mcfa(program, m)
        report = check_flat_soundness(result, concrete)
        assert report, report.violations[:5]


@pytest.mark.parametrize("name", SOURCES)
@pytest.mark.parametrize("k", [0, 1, 2])
class TestPolyKCFASoundness:
    def test_flat_history(self, name, k):
        program = compile_program(SOURCES[name])
        concrete = run_flat(program, record_trace=True,
                            env_policy="history")
        result = analyze_poly_kcfa(program, k)
        report = check_flat_soundness(result, concrete)
        assert report, report.violations[:5]


class TestNaiveSoundness:
    @pytest.mark.parametrize("name", ["const", "apply", "closures"])
    def test_naive_engine_covers_concrete(self, name):
        program = compile_program(SOURCES[name])
        concrete = run_shared(program, record_trace=True,
                              time_mode="history")
        result = analyze_kcfa_naive(program, 1)
        report = check_kcfa_soundness(result, concrete)
        assert report, report.violations[:5]


class TestSuiteSoundness:
    """Soundness on the real §6.2 programs (m-CFA, the paper's
    contribution, checked on every suite program)."""

    @pytest.mark.parametrize("bench_name", [
        "eta", "map", "sat", "regex", "interp", "scm2java", "scm2c",
    ])
    def test_mcfa_sound_on_suite(self, bench_name, suite_compiled):
        program = suite_compiled[bench_name]
        concrete = run_flat(program, record_trace=True,
                            env_policy="stack")
        result = analyze_mcfa(program, 1)
        report = check_flat_soundness(result, concrete)
        assert report, report.violations[:5]

    @pytest.mark.parametrize("bench_name", ["eta", "map", "scm2java"])
    def test_kcfa_sound_on_smaller_suite(self, bench_name,
                                         suite_compiled):
        program = suite_compiled[bench_name]
        concrete = run_shared(program, record_trace=True,
                              time_mode="history")
        result = analyze_kcfa(program, 1)
        report = check_kcfa_soundness(result, concrete)
        assert report, report.violations[:5]


class TestReportAPI:
    def test_report_truthiness(self):
        program = compile_program("1")
        concrete = run_shared(program, record_trace=True,
                              time_mode="history")
        report = check_kcfa_soundness(analyze_kcfa(program, 1),
                                      concrete)
        assert bool(report) is True
        assert "SOUND" in report.summary()

    def test_history_mode_required(self):
        program = compile_program("((lambda (x) x) 1)")
        concrete = run_shared(program, record_trace=True)  # integer
        with pytest.raises(TypeError):
            check_kcfa_soundness(analyze_kcfa(program, 1), concrete)
