"""Incremental re-analysis: alignment, resume, and the differential.

The contract under test is the tentpole one: a warm
:class:`~repro.analysis.incremental.AnalysisSession` that absorbs an
edit must end in *exactly* the state a from-scratch run over the same
aligned program produces — byte-identical rendered reports, equal
stores, equal reachable-configuration sets — across every session
analysis and both value domains.  On top of that, the whole point:
an edit that touches one dataflow-isolated literal must re-converge
in strictly fewer engine steps than the from-scratch run.

Edit scripts are applied structurally (parse → transform → unparse)
so the same script runs over hand-written suite programs and random
generator output alike: bump a literal, insert / delete / swap a
binding, eta-wrap the final call, plus the no-op edit.
"""

from __future__ import annotations

import pytest

from repro.analysis.incremental import (
    KEPT_RATIO_FLOOR, SESSION_ANALYSES, AnalysisSession, align_program,
    clone_program,
)
from repro.cache import ProgramCache
from repro.cps.syntax import iter_calls
from repro.errors import UsageError
from repro.scheme.cps_transform import compile_program
from repro.scheme.sexp import Symbol, parse_sexps, write_sexp
from repro.service.jobs import JobSpec, WorkerSessions, render_reports
from shared_corpus import small_sources

SOURCE = "(define (id x) x)\n(+ (id 3) (id 4))\n"


# -- structural edit scripts -------------------------------------------------

def _to_lists(datum):
    if isinstance(datum, (tuple, list)):
        return [_to_lists(item) for item in datum]
    return datum


def _unparse(forms) -> str:
    return "\n".join(write_sexp(form) for form in forms)


def _int_spots(forms) -> list:
    spots = []

    def walk(node):
        if not isinstance(node, list):
            return
        for index, child in enumerate(node):
            if isinstance(child, bool):
                continue
            if isinstance(child, int):
                spots.append((node, index))
            else:
                walk(child)

    walk(forms)
    return spots


def edit_noop(forms):
    return forms


def edit_bump_literal(forms):
    """+1 the last integer literal in the program."""
    spots = _int_spots(forms)
    if spots:
        parent, index = spots[-1]
        parent[index] += 1
    return forms


def edit_insert_binding(forms):
    """Wrap the final expression in a fresh (unused) let binding."""
    forms[-1] = [Symbol("let"), [[Symbol("zzq"), 41]], forms[-1]]
    return forms


def edit_delete_binding(forms):
    """Undo :func:`edit_insert_binding`: drop the zzq let again."""
    last = forms[-1]
    if isinstance(last, list) and last[:1] == [Symbol("let")] \
            and last[1] == [[Symbol("zzq"), 41]]:
        forms[-1] = last[2]
    return forms


def _is_function_define(form) -> bool:
    return isinstance(form, list) and len(form) >= 2 \
        and form[0] == Symbol("define") and isinstance(form[1], list)


def edit_swap_defines(forms):
    """Swap the first two function defines (a pure reordering)."""
    definitions = [index for index, form in enumerate(forms)
                   if _is_function_define(form)]
    if len(definitions) >= 2:
        first, second = definitions[0], definitions[1]
        forms[first], forms[second] = forms[second], forms[first]
    return forms


def edit_eta_wrap(forms):
    """Route the final expression through an identity redex."""
    forms[-1] = [[Symbol("lambda"), [Symbol("ewz")], Symbol("ewz")],
                 forms[-1]]
    return forms


EDIT_SCRIPT = [edit_noop, edit_bump_literal, edit_insert_binding,
               edit_delete_binding, edit_swap_defines, edit_eta_wrap]


def apply_edit(source: str, script) -> str:
    return _unparse(script(_to_lists(parse_sexps(source))))


# -- the differential harness ------------------------------------------------

def _cold_reference(session: AnalysisSession) -> AnalysisSession:
    """A from-scratch session over the warm session's *aligned*
    program — same labels, so reports are byte-comparable."""
    return AnalysisSession(clone_program(session.program),
                           session.analysis, session.parameter,
                           plain=session.plain)


def _canon_config(config):
    """A structural key for a configuration: labels and times only.

    Calls and lambdas compare by identity, and the cold reference
    runs over a *clone* of the warm session's program, so object
    equality can never hold across the two — label equality is the
    meaningful contract."""
    benv = getattr(config, "benv", None)
    if benv is not None:
        return (config.call.label, tuple(benv.items()), config.time)
    return (config.call.label, config.env)


def _canon_store(session: AnalysisSession) -> dict:
    # Value reprs are label-based (`clo[5]{f%0→()}`), not
    # identity-based, so they compare structurally across clones.
    return {addr: frozenset(repr(value) for value in flow)
            for addr, flow in session.store.items()}


def _assert_equivalent(warm: AnalysisSession,
                       cold: AnalysisSession) -> None:
    assert _canon_store(warm) == _canon_store(cold)
    assert {_canon_config(c) for c in warm.state.seen} \
        == {_canon_config(c) for c in cold.state.seen}
    warm_summary = dict(warm.result.summary())
    cold_summary = dict(cold.result.summary())
    warm_summary.pop("elapsed", None)
    cold_summary.pop("elapsed", None)
    warm_steps = warm_summary.pop("steps", None)
    cold_steps = cold_summary.pop("steps", None)
    assert warm_summary == cold_summary
    assert warm_steps is not None and cold_steps is not None
    assert render_reports(warm.program, warm.result, "all") \
        == render_reports(cold.program, cold.result, "all")


def _run_script(source: str, analysis: str, plain: bool) -> list:
    session = AnalysisSession(compile_program(source), analysis, 1,
                              plain=plain)
    outcomes = []
    text = source
    for script in EDIT_SCRIPT:
        text = apply_edit(text, script)
        outcome = session.edit(compile_program(text))
        _assert_equivalent(session, _cold_reference(session))
        outcomes.append(outcome)
    return outcomes


# -- tests -------------------------------------------------------------------

class TestAlignment:
    def _programs(self, old_source: str, new_source: str):
        old = compile_program(old_source)
        labels = [1000]

        def fresh():
            labels[0] += 1
            return labels[0]

        diff = align_program(old, compile_program(new_source).root,
                             fresh)
        return old, diff

    def test_identical_source_aligns_perfectly(self):
        old, diff = self._programs(SOURCE, SOURCE)
        assert diff.kept_ratio == 1.0
        assert not diff.dirty_labels
        assert not diff.retired_labels
        assert diff.fresh_nodes == 0
        assert diff.program.root is old.root

    def test_literal_edit_patches_in_place(self):
        """A one-literal change keeps every label and object identity
        — only the enclosing call is marked dirty."""
        old = compile_program(SOURCE)
        old_calls = {call.label: call for call in iter_calls(old.root)}
        diff = align_program(
            old, compile_program(SOURCE.replace("4", "5")).root,
            iter(range(1000, 2000)).__next__)
        assert diff.kept_ratio == 1.0
        assert not diff.retired_labels
        assert len(diff.dirty_labels) == 1
        for label, call in diff.program.calls_by_label.items():
            assert old_calls[label] is call  # identity survived

    def test_structural_change_retires_labels(self):
        _, diff = self._programs(
            SOURCE, "(define (id x) (+ x 0))\n(+ (id 3) (id 4))\n")
        assert diff.fresh_nodes > 0
        assert diff.retired_labels
        assert 0 < diff.kept_ratio < 1.0

    def test_clone_is_independent(self):
        program = compile_program(SOURCE)
        clone = clone_program(program)
        assert clone.root is not program.root
        assert set(clone.calls_by_label) == set(program.calls_by_label)
        assert set(clone.lams_by_label) == set(program.lams_by_label)
        # Editing a session built on the clone must not reach the
        # original object (the worker's shared cache entry).
        session = AnalysisSession(clone, "kcfa", 1)
        session.edit(compile_program(SOURCE.replace("3", "9")))
        original_calls = {call.label: call
                          for call in iter_calls(program.root)}
        for label, call in original_calls.items():
            assert program.calls_by_label[label] is call


class TestSessionBasics:
    def test_non_session_analysis_is_a_usage_error(self):
        with pytest.raises(UsageError, match="does not support"):
            AnalysisSession(compile_program(SOURCE), "pushdown", 0)

    @pytest.mark.parametrize("analysis", SESSION_ANALYSES)
    def test_initial_result_matches_registry_run(self, analysis):
        from repro.analysis.registry import run_analysis
        parameter = 0 if analysis == "zero" else 1
        program = compile_program(SOURCE)
        session = AnalysisSession(clone_program(program), analysis,
                                  parameter)
        direct = run_analysis(analysis, program, parameter)
        want = dict(direct.summary())
        got = dict(session.result.summary())
        for summary in (want, got):
            summary.pop("elapsed", None)
        assert got == want

    def test_noop_edit_resumes_in_one_step(self):
        session = AnalysisSession(compile_program(SOURCE), "kcfa", 1)
        outcome = session.edit(compile_program(SOURCE))
        assert outcome.mode == "resumed"
        assert outcome.affected == 0
        assert outcome.cleared == 0
        # Only the boot seed runs; it re-derives known facts and the
        # worklist drains immediately.
        assert outcome.result.steps == 1

    def test_invasive_edit_falls_back_to_scratch(self):
        session = AnalysisSession(compile_program(SOURCE), "kcfa", 1)
        outcome = session.edit(compile_program(
            "(define (f a b) (if a b (f b a)))\n"
            "(define (g c) (f c #t))\n(g #f)\n"))
        assert outcome.mode == "scratch"
        assert "survived" in outcome.reason
        assert outcome.kept_ratio < KEPT_RATIO_FLOOR
        _assert_equivalent(session, _cold_reference(session))

    def test_session_counters(self):
        session = AnalysisSession(compile_program(SOURCE), "kcfa", 1)
        session.edit(compile_program(SOURCE))
        session.edit(compile_program("(+ 1 2)"))
        assert session.edits == 2
        assert session.resumed == 1
        assert session.scratch == 1


class TestDifferential:
    """Warm resume ≡ from-scratch, byte for byte, store for store."""

    @pytest.mark.parametrize("analysis", SESSION_ANALYSES)
    @pytest.mark.parametrize("plain", [False, True],
                             ids=["interned", "plain"])
    def test_full_matrix_on_eta(self, analysis, plain):
        self._check(small_sources()["eta"], analysis, plain)

    @pytest.mark.parametrize("name", sorted(small_sources()))
    def test_corpus_under_kcfa(self, name):
        self._check(small_sources()[name], "kcfa", False)

    def _check(self, source: str, analysis: str, plain: bool):
        outcomes = _run_script(source, analysis, plain)
        # The no-op head of the script must take the warm path; the
        # differential above already proved every step exact.
        assert outcomes[0].mode == "resumed"


def wide_source(arms: int = 12, target: int = 3) -> str:
    """Many dataflow-isolated arms: editing the last one dirties an
    O(1) slice of the program."""
    defines = "\n".join(
        f"(define (g{i} n) (if (= n 0) {i} (g{i} (- n 1))))"
        for i in range(arms))
    call = "(list " + " ".join(f"(g{i} {target})"
                               for i in range(arms)) + ")"
    return defines + "\n" + call


class TestStepSavings:
    """The acceptance criterion: an O(1)-dirty edit re-converges with
    strictly fewer engine steps than from-scratch."""

    @pytest.mark.parametrize("analysis", SESSION_ANALYSES)
    def test_last_arm_edit_beats_scratch(self, analysis):
        before = wide_source(arms=12, target=3)
        after = before.replace("(g11 3)", "(g11 4)")
        assert after != before
        session = AnalysisSession(compile_program(before), analysis, 1)
        outcome = session.edit(compile_program(after))
        assert outcome.mode == "resumed"
        cold = _cold_reference(session)
        _assert_equivalent(session, cold)
        assert outcome.result.steps < cold.result.steps
        # The damage stayed local: far fewer addresses were cleared
        # than the warm store holds.
        assert 0 < outcome.cleared < len(cold.store) / 2


class TestQueries:
    def _session(self, source: str = SOURCE) -> AnalysisSession:
        return AnalysisSession(compile_program(source), "kcfa", 1)

    def test_value_of_matches_uniquified_binders(self):
        answer = self._session().query("value-of", "x")
        assert answer["query"] == "value-of"
        assert answer["contexts"] >= 1
        assert answer["variables"]
        assert all(var == "x" or var.startswith("x%")
                   for var in answer["variables"])
        assert set(answer["values"]) == {"3", "4"}

    def test_value_of_unknown_variable_is_empty_not_an_error(self):
        answer = self._session().query("value-of", "nope")
        assert answer["contexts"] == 0
        assert answer["values"] == []

    def test_call_sites_of_finds_both_sites(self):
        session = self._session()
        sites = set()
        for label in session.program.lams_by_label:
            answer = session.query("call-sites-of", str(label))
            assert answer["probed"] >= 1
            sites |= set(answer["sites"])
        # The id lambda is applied twice; both call sites are calls
        # of the program.
        assert len(sites) >= 2
        assert sites <= set(session.program.calls_by_label)

    def test_escaping_sees_heap_escape(self):
        session = self._session("(cons (lambda (z) z) 1)\n")
        answers = [session.query("escaping", str(label))
                   for label in session.program.lams_by_label]
        assert any(a["to_heap"] for a in answers)
        assert all(a["escaping"] for a in answers if a["to_heap"])

    def test_non_escaping_lambda(self):
        session = self._session()
        # `id` is called and returns an integer; it reaches neither
        # the halt continuation nor a heap cell.
        user_lams = [label for label, lam
                     in session.program.lams_by_label.items()
                     if lam.is_user]
        answers = [session.query("escaping", str(label))
                   for label in user_lams]
        assert answers and not any(a["escaping"] for a in answers)

    def test_queries_answer_from_the_warm_state_after_an_edit(self):
        session = self._session()
        session.edit(compile_program(SOURCE.replace("4", "7")))
        answer = session.query("value-of", "x")
        assert set(answer["values"]) == {"3", "7"}

    def test_unknown_kind_and_bad_label_are_usage_errors(self):
        session = self._session()
        with pytest.raises(UsageError, match="unknown query"):
            session.query("types-of", "x")
        with pytest.raises(UsageError, match="not a lambda label"):
            session.query("escaping", "id")


class TestWorkerSessions:
    def _spec(self, source: str = SOURCE, **overrides) -> JobSpec:
        fields = dict(source=source, analysis="kcfa", context=1,
                      timeout=60.0)
        fields.update(overrides)
        return JobSpec(**fields)

    def test_create_edit_query_rows(self):
        programs = ProgramCache(capacity=4)
        sessions = WorkerSessions(programs=programs)
        row = sessions.create("s1", self._spec())
        assert row["status"] == "ok"
        assert row["mode"] == "scratch"
        assert row["stdout"].startswith("program:")
        assert programs.pinned() == 1
        row = sessions.edit("s1", SOURCE.replace("4", "5"), 60.0)
        assert row["status"] == "ok"
        assert row["mode"] == "resumed"
        assert row["steps"] >= 1
        assert programs.pinned() == 1  # pin moved to the new key
        row = sessions.query("s1", "value-of", "x")
        assert row["status"] == "ok"
        assert set(row["answer"]["values"]) == {"3", "5"}
        counters = sessions.counters()
        assert counters["open"] == 1
        assert counters["resumed"] == 1

    def test_unknown_session_row(self):
        sessions = WorkerSessions()
        row = sessions.edit("ghost", SOURCE, 60.0)
        assert row["status"] == "error"
        assert "unknown session" in row["error"]
        assert row["session_dropped"] is True

    def test_lru_eviction_releases_the_pin(self):
        programs = ProgramCache(capacity=4)
        sessions = WorkerSessions(programs=programs, capacity=1)
        sessions.create("s1", self._spec())
        sessions.create("s2", self._spec(source="(+ 1 2)\n"))
        assert sessions.counters() == {
            "open": 1, "created": 2, "evicted": 1, "dropped": 0,
            "resumed": 0, "scratch": 0}
        assert programs.pinned() == 1  # s1's pin was released
        row = sessions.query("s1", "value-of", "x")
        assert row["status"] == "error"
        assert "unknown session" in row["error"]

    def test_bad_analysis_never_installs_a_session(self):
        sessions = WorkerSessions()
        row = sessions.create("s1", self._spec(analysis="pushdown",
                                               context=0))
        assert row["status"] == "error"
        assert "does not support sessions" in row["error"]
        assert len(sessions) == 0
