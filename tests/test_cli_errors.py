"""CLI usage errors: exit status 2, one-line message, no traceback.

Unknown analysis names and invalid ``--context``/``-k`` values used
to surface as raw tracebacks (machine ``ValueError``\\ s) or as
inconsistent exit-1 paths from the dispatch tables.  They now route
through :class:`repro.errors.UsageError` — a
:class:`~repro.errors.ReproError` subclass — and the CLI's ``main``
prints a single ``error: ...`` line and returns 2, matching the
argparse convention for malformed flags.
"""

from __future__ import annotations

import pytest

from repro.__main__ import main
from repro.errors import ReproError, UsageError

SCHEME = "(define (id x) x) (id 3)"
FJ = """
class Main extends Object {
  Main() { super(); }
  Object main() { Object o; o = this; return o; }
}
"""


@pytest.fixture()
def scheme_file(tmp_path):
    path = tmp_path / "prog.scm"
    path.write_text(SCHEME, encoding="utf-8")
    return str(path)


@pytest.fixture()
def fj_file(tmp_path):
    path = tmp_path / "prog.java"
    path.write_text(FJ, encoding="utf-8")
    return str(path)


def _error_line(capsys) -> str:
    err = capsys.readouterr().err
    lines = [line for line in err.splitlines() if line]
    assert len(lines) == 1, f"expected one error line, got {err!r}"
    assert lines[0].startswith("error: ")
    assert "Traceback" not in err
    return lines[0]


class TestAnalyze:
    def test_unknown_analysis_exits_2(self, scheme_file, capsys):
        code = main(["analyze", scheme_file, "--analysis",
                     "super-cfa"])
        assert code == 2
        line = _error_line(capsys)
        assert "unknown analysis 'super-cfa'" in line
        assert "kcfa" in line  # the message lists valid choices

    def test_negative_context_exits_2(self, scheme_file, capsys):
        code = main(["analyze", scheme_file, "--analysis", "kcfa",
                     "-n", "-3"])
        assert code == 2
        assert "non-negative" in _error_line(capsys)

    def test_simplify_with_fj_analysis_exits_2(self, fj_file, capsys):
        code = main(["analyze", fj_file, "--analysis", "fj-mcfa",
                     "--simplify"])
        assert code == 2
        assert "--simplify" in _error_line(capsys)

    def test_scheme_report_with_fj_analysis_exits_2(self, fj_file,
                                                    capsys):
        code = main(["analyze", fj_file, "--analysis", "fj-kcfa",
                     "--report", "flow"])
        assert code == 2
        assert "Scheme-only" in _error_line(capsys)

    def test_valid_fj_analyze_succeeds(self, fj_file, capsys):
        assert main(["analyze", fj_file, "--analysis", "fj-kcfa",
                     "-n", "1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("program:")
        assert "FJ-k-CFA" in out


class TestSubmit:
    def test_unknown_analysis_exits_2_without_a_server(self, capsys):
        # Client-side validation: a typo needs neither a server nor
        # the source file, and exits 2 like analyze does.
        code = main(["submit", "nosuch.scm", "--analysis",
                     "super-cfa", "--port", "1"])
        assert code == 2
        assert "unknown analysis" in _error_line(capsys)

    def test_negative_context_exits_2_without_a_server(self, capsys):
        code = main(["submit", "nosuch.scm", "--analysis", "kcfa",
                     "-n", "-1", "--port", "1"])
        assert code == 2
        assert "non-negative" in _error_line(capsys)

    def test_fj_simplify_exits_2_without_a_server(self, capsys):
        # The Scheme-only-flag rules are part of the same client-side
        # contract, not just the server's validate().
        code = main(["submit", "nosuch.java", "--analysis", "fj-mcfa",
                     "--simplify", "--port", "1"])
        assert code == 2
        assert "--simplify" in _error_line(capsys)


class TestFailFast:
    def test_unknown_analysis_beats_missing_file(self, capsys):
        # The usage error (exit 2) must win over the file error
        # (exit 1): options are validated before the source is read.
        code = main(["analyze", "does-not-exist.scm", "--analysis",
                     "super-cfa"])
        assert code == 2
        assert "unknown analysis" in _error_line(capsys)


class TestFJCommand:
    def test_negative_k_exits_2(self, fj_file, capsys):
        code = main(["fj", fj_file, "-k", "-1"])
        assert code == 2
        assert "non-negative" in _error_line(capsys)


class TestBench:
    def test_unknown_analysis_exits_2(self, capsys):
        code = main(["bench", "--programs", "eta", "--analyses",
                     "turbo-cfa", "--output", "-"])
        assert code == 2
        assert "unknown analyses" in _error_line(capsys)

    def test_unknown_program_exits_2(self, capsys):
        code = main(["bench", "--programs", "nosuch", "--analyses",
                     "mcfa", "--output", "-"])
        assert code == 2
        assert "unknown benchmark program" in _error_line(capsys)

    def test_malformed_contexts_exits_2(self, capsys):
        code = main(["bench", "--programs", "eta", "--analyses",
                     "mcfa", "--contexts", "1,x", "--output", "-"])
        assert code == 2
        assert "--contexts" in _error_line(capsys)

    def test_negative_contexts_exits_2(self, capsys):
        # Fail fast with exit 2, not one error row per matrix cell.
        code = main(["bench", "--programs", "eta", "--analyses",
                     "mcfa", "--contexts", "-1", "--output", "-"])
        assert code == 2
        assert "non-negative" in _error_line(capsys)


class TestObjDepth:
    def test_obj_depth_on_non_hybrid_exits_2(self, capsys):
        # --obj-depth only exists on the hybrid ladder; anywhere else
        # it must be a one-line usage error, not a traceback or a
        # silently ignored axis.
        code = main(["bench", "--programs", "eta", "--analyses",
                     "zero", "--obj-depth", "1,2", "--output", "-"])
        assert code == 2
        line = _error_line(capsys)
        assert "--obj-depth" in line
        assert "fj-hybrid" in line  # names the analyses that have it

    def test_negative_obj_depth_exits_2(self, capsys):
        code = main(["bench", "--programs", "pairs", "--analyses",
                     "fj-hybrid", "--obj-depth", "-1",
                     "--output", "-"])
        assert code == 2
        assert "non-negative" in _error_line(capsys)

    def test_malformed_obj_depth_exits_2(self, capsys):
        code = main(["bench", "--programs", "pairs", "--analyses",
                     "fj-hybrid", "--obj-depth", "1,x",
                     "--output", "-"])
        assert code == 2
        assert "--obj-depth" in _error_line(capsys)

    def test_negative_obj_depth_is_a_usage_error_in_the_library(self):
        # The hybrid analyzer itself routes parameter validation
        # through UsageError (historically a bare ValueError that
        # escaped the CLI as a traceback).
        from repro.fj import parse_fj
        from repro.fj.examples import ALL_EXAMPLES
        from repro.fj.hybrid import analyze_fj_hybrid
        program = parse_fj(ALL_EXAMPLES["pairs"])
        with pytest.raises(UsageError, match="non-negative"):
            analyze_fj_hybrid(program, 1, obj_depth=-1)
        with pytest.raises(UsageError, match="non-negative"):
            analyze_fj_hybrid(program, -1)


class TestSpecializeFlags:
    def test_conflicting_specialize_flags_exit_2(self, capsys):
        code = main(["bench", "--programs", "eta", "--analyses",
                     "zero", "--specialize", "on,off",
                     "--no-specialize", "--output", "-"])
        assert code == 2
        assert "--no-specialize" in _error_line(capsys)

    def test_explicit_on_with_no_specialize_exits_2(self, capsys):
        # An explicit `--specialize on` must not be silently ignored
        # in favor of --no-specialize; any pairing of the two flags
        # is rejected.
        code = main(["bench", "--programs", "eta", "--analyses",
                     "zero", "--specialize", "on",
                     "--no-specialize", "--output", "-"])
        assert code == 2
        assert "--no-specialize" in _error_line(capsys)

    def test_unknown_specialize_mode_exits_2(self, capsys):
        code = main(["bench", "--programs", "eta", "--analyses",
                     "zero", "--specialize", "sometimes",
                     "--output", "-"])
        assert code == 2
        assert "specialize" in _error_line(capsys)


class TestHierarchy:
    def test_usage_error_is_a_repro_error(self):
        # Service clients catching ReproError keep working.
        assert issubclass(UsageError, ReproError)

    def test_usage_error_is_a_value_error(self):
        # Policy-parameter validation (negative k/m/n/obj_depth) used
        # to raise bare ValueError; callers that caught that keep
        # working through the dual inheritance.
        assert issubclass(UsageError, ValueError)
