"""Unit coverage for the service wire protocol and job core.

The differential and stress suites exercise the happy paths end to
end; this file pins down the edges: frame decoding errors, submit
validation (every bad field), the shared analysis dispatch (including
the FJ side the socket service does not expose), ``run_job`` status
rows, and the server's behavior on garbage input.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.errors import ReproError
from repro.fj import analyze_fj_kcfa, parse_fj
from repro.fj.examples import PAIRS
from repro.service.jobs import (
    JobSpec, job_cache_key, run_fj_analysis, run_job,
    run_scheme_analysis,
)
from repro.service.protocol import (
    MAX_LINE_BYTES, PROTOCOL_VERSION, ProtocolError, decode_message,
    encode_message, read_frame, read_messages, submit_spec,
)

SOURCE = "(define (id x) x)\n(+ (id 3) (id 4))\n"


class TestFraming:
    def test_roundtrip(self):
        message = {"op": "submit", "source": "(λ ⊤ \"two\nlines\")"}
        line = encode_message(message)
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1  # newlines stay escaped
        assert decode_message(line) == message

    def test_bad_json_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="not JSON"):
            decode_message(b"{nope")

    def test_non_object_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_message(b"[1, 2]")

    def test_non_utf8_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="UTF-8"):
            decode_message(b"\xff\xfe{}")

    def test_oversized_frame_is_a_protocol_error(self):
        frame = b"x" * (MAX_LINE_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_message(frame)

    def test_read_messages_skips_blank_lines(self):
        stream = [b"\n", encode_message({"op": "ping"}), b"  \n",
                  encode_message({"op": "stats"})]
        ops = [m["op"] for m in read_messages(stream)]
        assert ops == ["ping", "stats"]

    def test_read_frame_skips_blanks_and_stops_at_eof(self):
        import io
        stream = io.BytesIO(b"\n  \n" + encode_message({"op": "ping"}))
        assert decode_message(read_frame(stream)) == {"op": "ping"}
        assert read_frame(stream) is None

    def test_read_frame_bounds_unterminated_lines(self):
        """An endless line must error at the cap, not balloon memory
        waiting for a newline that never comes."""
        import io
        stream = io.BytesIO(b"x" * (MAX_LINE_BYTES + 100))
        with pytest.raises(ProtocolError, match="exceeds"):
            read_frame(stream)


class TestSubmitSpec:
    def test_minimal_submit(self):
        spec = submit_spec({"op": "submit", "source": SOURCE})
        assert spec.analysis == "mcfa"
        assert spec.context == 1
        assert spec.timeout is None

    def test_path_is_read_server_side(self, tmp_path):
        path = tmp_path / "p.scm"
        path.write_text(SOURCE, encoding="utf-8")
        spec = submit_spec({"op": "submit", "path": str(path),
                            "analysis": "kcfa"})
        assert spec.source == SOURCE
        assert spec.analysis == "kcfa"

    def test_unreadable_path(self, tmp_path):
        with pytest.raises(ProtocolError, match="cannot read path"):
            submit_spec({"op": "submit",
                         "path": str(tmp_path / "missing.scm")})

    def test_non_string_path(self):
        with pytest.raises(ProtocolError, match="path must be"):
            submit_spec({"op": "submit", "path": 7})

    @pytest.mark.parametrize("message", [
        {"op": "submit"},                                # neither
        {"op": "submit", "source": "x", "path": "y"},    # both
    ])
    def test_exactly_one_of_source_and_path(self, message):
        with pytest.raises(ProtocolError, match="exactly one"):
            submit_spec(message)

    def test_unknown_fields_are_rejected(self):
        with pytest.raises(ProtocolError, match="contxt"):
            submit_spec({"op": "submit", "source": "x", "contxt": 2})

    @pytest.mark.parametrize("field_name,value,needle", [
        ("analysis", "tajima", "unknown analysis"),
        ("context", -1, "non-negative"),
        ("context", True, "non-negative"),
        ("context", "two", "non-negative"),
        ("report", "everything", "unknown report"),
        ("values", "boxed", "unknown values domain"),
        ("timeout", 0, "positive"),
        ("timeout", -3.5, "positive"),
        ("timeout", "fast", "positive"),
    ])
    def test_bad_fields(self, field_name, value, needle):
        message = {"op": "submit", "source": SOURCE,
                   field_name: value}
        with pytest.raises(ProtocolError, match=needle):
            submit_spec(message)

    def test_empty_source_is_rejected(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            submit_spec({"op": "submit", "source": "   "})

    def test_simplify_must_be_a_real_boolean(self):
        """bool("false") is True — coercion would silently simplify;
        the field must be validated, not coerced."""
        with pytest.raises(ProtocolError, match="simplify"):
            submit_spec({"op": "submit", "source": SOURCE,
                         "simplify": "false"})


class TestDispatch:
    def test_unknown_scheme_analysis(self):
        from repro.scheme.cps_transform import compile_program
        program = compile_program(SOURCE)
        with pytest.raises(ReproError, match="unknown analysis"):
            run_scheme_analysis(program, "super-cfa", 1)

    def test_unknown_fj_analysis(self):
        program = parse_fj(PAIRS)
        with pytest.raises(ReproError, match="unknown analysis"):
            run_fj_analysis(program, "fj-super", 1)

    @pytest.mark.parametrize("analysis", ["fj-kcfa", "fj-poly",
                                          "fj-kcfa-gc"])
    def test_fj_dispatch_runs(self, analysis):
        program = parse_fj(PAIRS)
        result = run_fj_analysis(program, analysis, 1)
        assert result.configs

    def test_fj_dispatch_matches_direct_call(self):
        program = parse_fj(PAIRS)
        via_jobs = run_fj_analysis(program, "fj-kcfa", 1).summary()
        direct = analyze_fj_kcfa(program, 1).summary()
        via_jobs.pop("elapsed")
        direct.pop("elapsed")
        assert via_jobs == direct


class TestRunJob:
    def test_ok_row(self):
        row = run_job(JobSpec(source=SOURCE, analysis="kcfa",
                              context=1, timeout=60.0))
        assert row["status"] == "ok"
        assert row["stdout"].startswith("program:")
        assert row["summary"]["analysis"] == "k-CFA"
        assert row["wall_seconds"] >= 0

    def test_parse_error_row(self):
        row = run_job(JobSpec(source="(lambda (x)"))
        assert row["status"] == "error"
        assert row["error"]
        assert "stdout" not in row

    def test_timeout_row(self):
        from repro.generators.worstcase import worst_case_source
        row = run_job(JobSpec(source=worst_case_source(14),
                              analysis="kcfa", context=2,
                              timeout=0.2))
        assert row["status"] == "timeout"
        assert "budget" in row["error"]

    def test_validate_returns_self(self):
        spec = JobSpec(source=SOURCE)
        assert spec.validate() is spec

    def test_prestarted_budget_clock_survives_the_engine(self):
        """run_job starts the budget before the front end; the engine
        must not reset that clock, or a job could run ~2x its
        timeout (compile up to the limit, then a fresh fixpoint
        allowance)."""
        from repro.errors import AnalysisTimeout
        from repro.scheme.cps_transform import compile_program
        from repro.util.budget import Budget
        program = compile_program(SOURCE)
        budget = Budget(max_seconds=1.0, check_every=1).start()
        budget._started_at -= 2.0  # the front end "burned" 2s
        with pytest.raises(AnalysisTimeout):
            run_scheme_analysis(program, "kcfa", 1, budget)

    def test_key_is_stable_across_processes(self):
        # SHA-256 of canonical JSON: no PYTHONHASHSEED dependence.
        spec = JobSpec(source=SOURCE, analysis="kcfa")
        assert job_cache_key(spec) == job_cache_key(
            JobSpec(source=SOURCE, analysis="kcfa"))


@pytest.fixture(scope="module")
def raw_server():
    from repro.service.server import AnalysisServer
    server = AnalysisServer(port=0, workers=1).start()
    yield server
    server.stop()


def _raw_roundtrip(server, payload: bytes, replies: int = 1) -> list:
    """Send raw bytes, read NDJSON replies off the same socket."""
    with socket.create_connection(("127.0.0.1", server.port),
                                  timeout=30) as conn:
        conn.sendall(payload)
        stream = conn.makefile("rb")
        return [json.loads(stream.readline())
                for _ in range(replies)]


class TestServerProtocolEdges:
    def test_garbage_line_yields_error_event(self, raw_server):
        (event,) = _raw_roundtrip(raw_server, b"this is not json\n")
        assert event["event"] == "error"
        assert "JSON" in event["error"]

    def test_unknown_op_yields_error_event(self, raw_server):
        (event,) = _raw_roundtrip(
            raw_server, encode_message({"op": "dance"}))
        assert event["event"] == "error"
        assert "unknown op" in event["error"]

    def test_bad_submit_keeps_the_connection_alive(self, raw_server):
        payload = encode_message({"op": "submit", "id": "bad-1",
                                  "source": SOURCE,
                                  "analysis": "tajima"}) \
            + encode_message({"op": "ping"})
        events = _raw_roundtrip(raw_server, payload, replies=2)
        assert events[0]["event"] == "error"
        assert events[0]["job"] == "bad-1"
        assert events[1]["event"] == "pong"
        assert events[1]["protocol"] == PROTOCOL_VERSION

    def test_rejections_are_counted(self, raw_server):
        from repro.service.client import ServiceClient
        with ServiceClient(port=raw_server.port) as client:
            assert client.stats()["jobs"]["rejected"] >= 2

    def test_submit_by_path(self, raw_server, tmp_path):
        path = tmp_path / "p.scm"
        path.write_text(SOURCE, encoding="utf-8")
        payload = encode_message({"op": "submit", "id": "p1",
                                  "path": str(path),
                                  "analysis": "zero", "context": 0,
                                  "timeout": 60.0})
        events = _raw_roundtrip(raw_server, payload, replies=3)
        assert [e["event"] for e in events] \
            == ["queued", "running", "done"]
        assert events[2]["status"] == "ok"
        assert "0CFA" in events[2]["stdout"]

    def test_client_detects_closed_connection(self, raw_server):
        from repro.service.client import ServiceClient
        client = ServiceClient(port=raw_server.port)
        client.close()
        with pytest.raises(OSError):
            client.ping()


class TestAnalysesOp:
    """The ROADMAP's service-side registry introspection: remote
    clients discover policies over the wire, from the same registry
    every other front end dispatches off."""

    def test_analyses_op_serves_the_registry(self, raw_server):
        from repro.analysis.registry import registry_listing
        (event,) = _raw_roundtrip(
            raw_server, encode_message({"op": "analyses"}))
        assert event["event"] == "analyses"
        assert event["analyses"] == registry_listing()
        assert event["count"] == len(registry_listing())

    def test_language_filter(self, raw_server):
        from repro.analysis.registry import registry_listing
        (event,) = _raw_roundtrip(
            raw_server,
            encode_message({"op": "analyses", "language": "fj"}))
        assert event["analyses"] == registry_listing("fj")
        assert all(row["language"] == "fj"
                   for row in event["analyses"])

    def test_bad_language_is_an_error_event(self, raw_server):
        (event,) = _raw_roundtrip(
            raw_server,
            encode_message({"op": "analyses", "language": "cobol"}))
        assert event["event"] == "error"
        assert "language" in event["error"]

    def test_unknown_field_is_an_error_event(self, raw_server):
        (event,) = _raw_roundtrip(
            raw_server,
            encode_message({"op": "analyses", "lang": "fj"}))
        assert event["event"] == "error"
        assert "lang" in event["error"]

    def test_client_analyses_helper(self, raw_server):
        from repro.analysis.registry import registry_listing
        from repro.service.client import ServiceClient
        with ServiceClient(port=raw_server.port) as client:
            assert client.analyses() == registry_listing()
            assert client.analyses("scheme") \
                == registry_listing("scheme")

    def test_hybrid_row_declares_the_obj_depth_axis(self, raw_server):
        from repro.service.client import ServiceClient
        with ServiceClient(port=raw_server.port) as client:
            rows = {row["name"]: row for row in client.analyses()}
        assert rows["fj-hybrid"]["takes_obj_depth"] is True
        assert rows["kcfa-naive"]["specialized"] is False


class TestSubmitSpecialize:
    def test_specialize_must_be_a_real_boolean(self):
        with pytest.raises(ProtocolError, match="specialize"):
            submit_spec({"op": "submit", "source": SOURCE,
                         "specialize": "yes"})

    def test_specialize_false_reaches_the_spec(self):
        spec = submit_spec({"op": "submit", "source": SOURCE,
                            "specialize": False})
        assert spec.specialize is False

    def test_server_no_specialize_overrides_requests(self):
        """A --no-specialize server runs (and caches) every job on
        the generic path, whatever the request asked."""
        from repro.service.client import ServiceClient
        from repro.service.server import AnalysisServer
        server = AnalysisServer(port=0, workers=1,
                                specialize=False).start()
        try:
            with ServiceClient(port=server.port) as client:
                final = client.submit(source=SOURCE, analysis="zero",
                                      context=0, timeout=60.0)
            assert final["status"] == "ok"
            assert "0CFA" in final["stdout"]
        finally:
            server.stop()


class TestLeaderDisconnect:
    def test_leader_disconnect_does_not_leak_the_flight(self):
        """A leader whose client vanishes right after submitting must
        still run to completion and retire its flight — a leaked
        flight would hang every future identical submission forever."""
        import socket
        import time
        from repro.service.client import ServiceClient
        from repro.service.protocol import encode_message
        from repro.service.server import AnalysisServer

        server = AnalysisServer(port=0, workers=1).start()
        try:
            # Submit raw and slam the connection shut without reading
            # a single event: the server's fan-out must tolerate the
            # dead subscriber.
            ghost = socket.create_connection(
                ("127.0.0.1", server.port), timeout=10.0)
            ghost.sendall(encode_message(
                {"op": "submit", "id": "ghost", "source": SOURCE,
                 "analysis": "mcfa", "context": 1, "timeout": 30.0}))
            ghost.close()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if server._jobs["submitted"] >= 1 \
                        and server._inflight.pending() == 0:
                    break
                time.sleep(0.05)
            assert server._jobs["submitted"] >= 1, \
                "the ghost's submission never reached the scheduler"
            assert server._inflight.pending() == 0, \
                "the dead leader's flight was never retired"
            # And an identical job from a live client completes.
            with ServiceClient(port=server.port) as client:
                final = client.submit(source=SOURCE, analysis="mcfa",
                                      context=1, timeout=30.0)
            assert final["status"] == "ok"
        finally:
            server.stop()


class TestDeadFleet:
    def test_submit_with_no_live_workers_retires_the_flight(self):
        """If every worker is gone the job must report an error and
        the in-flight entry must be retired — otherwise every
        identical submission after it would hang forever."""
        import time
        from repro.service.client import ServiceClient
        from repro.service.server import AnalysisServer

        server = AnalysisServer(port=0, workers=1).start()
        try:
            for worker_id in server._fleet.live_workers():
                server._fleet.kill(worker_id)
            deadline = time.monotonic() + 30
            while server._fleet.live_workers() \
                    and time.monotonic() < deadline:
                time.sleep(0.05)
            assert not server._fleet.live_workers()
            # The ring empties via the death callback on the server's
            # loop; poll through a real client until it has.
            with ServiceClient(port=server.port) as client:
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    final = client.submit(source=SOURCE,
                                          analysis="mcfa", context=1,
                                          timeout=30.0)
                    if final["status"] == "error":
                        break
                    time.sleep(0.05)
                for _ in range(2):  # a leaked flight would hang here
                    final = client.submit(source=SOURCE,
                                          analysis="mcfa", context=1,
                                          timeout=30.0)
                    assert final["status"] == "error"
                    assert "no live workers" in final["error"]
                assert client.stats()["inflight"] == 0
        finally:
            server.stop()


class TestSessionValidators:
    """Field-level validation of the session wire ops."""

    def test_submit_wants_session(self):
        from repro.service.protocol import submit_wants_session
        assert submit_wants_session({"op": "submit"}) is False
        assert submit_wants_session({"session": False}) is False
        assert submit_wants_session({"session": True}) is True

    @pytest.mark.parametrize("session", [1, "yes", None, [True]])
    def test_submit_session_must_be_a_real_boolean(self, session):
        from repro.service.protocol import submit_wants_session
        with pytest.raises(ProtocolError, match="JSON boolean"):
            submit_wants_session({"session": session})

    def test_edit_request_happy_path(self):
        from repro.service.protocol import edit_request
        assert edit_request({"op": "edit", "session": "s1",
                             "source": SOURCE, "timeout": 5}) \
            == ("s1", SOURCE, 5)
        assert edit_request({"op": "edit", "session": "s1",
                             "source": SOURCE}) \
            == ("s1", SOURCE, None)

    def test_edit_unknown_fields_are_rejected(self):
        from repro.service.protocol import edit_request
        with pytest.raises(ProtocolError, match="unknown edit"):
            edit_request({"op": "edit", "session": "s1",
                          "source": SOURCE, "analysis": "kcfa"})

    @pytest.mark.parametrize("session", [None, "", 7])
    def test_edit_needs_a_session_id(self, session):
        from repro.service.protocol import edit_request
        message = {"op": "edit", "source": SOURCE}
        if session is not None:
            message["session"] = session
        with pytest.raises(ProtocolError, match="needs 'session'"):
            edit_request(message)

    @pytest.mark.parametrize("timeout", [0, -1, True, "fast"])
    def test_edit_timeout_must_be_positive(self, timeout):
        from repro.service.protocol import edit_request
        with pytest.raises(ProtocolError, match="timeout"):
            edit_request({"op": "edit", "session": "s1",
                          "source": SOURCE, "timeout": timeout})

    def test_query_request_happy_path(self):
        from repro.service.protocol import query_request
        assert query_request({"op": "query", "session": "s2",
                              "kind": "value-of", "target": "x"}) \
            == ("s2", "value-of", "x")

    def test_query_unknown_kind(self):
        from repro.service.protocol import query_request
        with pytest.raises(ProtocolError, match="unknown query"):
            query_request({"op": "query", "session": "s1",
                           "kind": "points-to", "target": "x"})

    @pytest.mark.parametrize("target", [None, "", 3])
    def test_query_needs_a_target(self, target):
        from repro.service.protocol import query_request
        message = {"op": "query", "session": "s1",
                   "kind": "value-of"}
        if target is not None:
            message["target"] = target
        with pytest.raises(ProtocolError, match="target"):
            query_request(message)

    def test_query_unknown_fields_are_rejected(self):
        from repro.service.protocol import query_request
        with pytest.raises(ProtocolError, match="unknown query"):
            query_request({"op": "query", "session": "s1",
                           "kind": "value-of", "target": "x",
                           "depth": 2})


class _ScriptedServer:
    """A fake NDJSON server whose replies are scripted per request:
    each script entry is a list of event dicts sent verbatim after
    one request line is read.  ``{job}`` placeholders are filled with
    the id of the request the entry answers — ``{job0}`` with the id
    of the first request seen."""

    def __init__(self, script):
        self.script = script
        self.seen_ids: list[str] = []
        self.listener = socket.create_server(("127.0.0.1", 0))
        self.port = self.listener.getsockname()[1]
        self.thread = threading.Thread(target=self._serve,
                                       daemon=True)
        self.thread.start()

    def _serve(self):
        conn, _ = self.listener.accept()
        with conn:
            stream = conn.makefile("rb")
            for replies in self.script:
                line = stream.readline()
                if not line:
                    return
                job_id = json.loads(line).get("id")
                self.seen_ids.append(job_id)
                for event in replies:
                    rendered = {
                        key: (value.format(
                            job=job_id, job0=self.seen_ids[0])
                            if isinstance(value, str) else value)
                        for key, value in event.items()}
                    conn.sendall(encode_message(rendered))

    def close(self):
        self.listener.close()
        self.thread.join(timeout=5)


class TestClientEventAttribution:
    """Regression for the stale-event bug: the old filter
    ``event.get("job") not in (job_id, None)`` accepted *untagged*
    frames, so a stale unattributed ``done`` could terminate the
    wrong busy-retry attempt with another job's payload."""

    def test_stale_events_between_retries_are_skipped(self):
        from repro.service.client import ServiceClient
        server = _ScriptedServer([
            # Attempt 1: queued, then bounced busy.
            [{"event": "queued", "job": "{job}"},
             {"event": "busy", "job": "{job}", "retry_after": 0.0}],
            # Attempt 2 first sees two stale frames — one untagged,
            # one tagged with attempt 1's id — before its own.
            [{"event": "done", "status": "ok",
              "stdout": "STALE-UNTAGGED"},
             {"event": "done", "job": "{job0}", "status": "ok",
              "stdout": "STALE-OLD"},
             {"event": "queued", "job": "{job}"},
             {"event": "done", "job": "{job}", "status": "ok",
              "stdout": "FRESH"}],
        ])
        try:
            client = ServiceClient(port=server.port)
            try:
                final = client.submit(source=SOURCE,
                                      busy_retries=2)
            finally:
                client.close()
            assert final["event"] == "done"
            assert final["stdout"] == "FRESH"
            assert len(server.seen_ids) == 2
            assert server.seen_ids[0] != server.seen_ids[1]
        finally:
            server.close()

    def test_untagged_error_is_terminal(self):
        from repro.service.client import ServiceClient
        server = _ScriptedServer([
            [{"event": "error",
              "error": "connection-level rejection"}],
        ])
        try:
            client = ServiceClient(port=server.port)
            try:
                final = client.submit(source=SOURCE)
            finally:
                client.close()
            assert final["event"] == "error"
            assert "rejection" in final["error"]
        finally:
            server.close()

    def test_foreign_tagged_error_is_not_terminal(self):
        from repro.service.client import ServiceClient
        server = _ScriptedServer([
            [{"event": "error", "job": "someone-else",
              "error": "not yours"},
             {"event": "done", "job": "{job}", "status": "ok",
              "stdout": "MINE"}],
        ])
        try:
            client = ServiceClient(port=server.port)
            try:
                final = client.submit(source=SOURCE)
            finally:
                client.close()
            assert final["stdout"] == "MINE"
        finally:
            server.close()


class TestSessionWire:
    """Live session ops over raw sockets against a one-worker
    server."""

    def _events(self, server, message, replies):
        return _raw_roundtrip(server, encode_message(message),
                              replies=replies)

    def test_session_lifecycle(self, raw_server):
        queued, running, opened = self._events(
            raw_server,
            {"op": "submit", "id": "w-open", "source": SOURCE,
             "analysis": "kcfa", "context": 1, "session": True},
            replies=3)
        assert queued["event"] == "queued"
        assert running["event"] == "running"
        assert opened["event"] == "done"
        assert opened["status"] == "ok"
        session = opened["session"]
        assert running["session"] == session
        assert opened["mode"] == "scratch"
        assert opened["stdout"]

        # Edit from another connection: shard affinity is server-side.
        edited = self._events(
            raw_server,
            {"op": "edit", "id": "w-edit", "session": session,
             "source": SOURCE.replace("(id 4)", "(id 5)")},
            replies=3)[-1]
        assert edited["event"] == "done"
        assert edited["status"] == "ok"
        assert edited["session"] == session
        assert edited["mode"] in ("resumed", "scratch")

        answered = self._events(
            raw_server,
            {"op": "query", "id": "w-query", "session": session,
             "kind": "value-of", "target": "x"},
            replies=3)[-1]
        assert answered["event"] == "done"
        assert answered["status"] == "ok"
        assert answered["answer"]["query"] == "value-of"
        assert answered["answer"]["values"]

    def test_unknown_session_is_rejected_fast(self, raw_server):
        (event,) = self._events(
            raw_server,
            {"op": "edit", "id": "w-lost", "session": "s424242",
             "source": SOURCE},
            replies=1)
        assert event["event"] == "error"
        assert "unknown session" in event["error"]

    def test_bad_edit_fields_are_an_error_event(self, raw_server):
        (event,) = self._events(
            raw_server,
            {"op": "edit", "id": "w-bad", "session": "s1",
             "source": SOURCE, "analysis": "kcfa"},
            replies=1)
        assert event["event"] == "error"
        assert "unknown edit" in event["error"]

    def test_bad_query_kind_is_an_error_event(self, raw_server):
        (event,) = self._events(
            raw_server,
            {"op": "query", "id": "w-kind", "session": "s1",
             "kind": "points-to", "target": "x"},
            replies=1)
        assert event["event"] == "error"
        assert "unknown query" in event["error"]
