"""Tests for the program generators."""

import pytest

from repro.concrete import run_flat, run_shared
from repro.fj import parse_fj, run_fj
from repro.generators.paradox import (
    ParadoxCounts, find_cxy_lambda, functional_paradox_counts,
    paradox_fj_source, paradox_functional_program,
    paradox_functional_source,
)
from repro.generators.worstcase import (
    worst_case_fj_source, worst_case_program, worst_case_series,
    worst_case_source,
)
from repro.analysis import analyze_kcfa, analyze_mcfa


class TestWorstCase:
    def test_source_structure(self):
        source = worst_case_source(3)
        assert source.count("lambda") == 7  # 2 per level + inner z
        assert "(z x1 x2 x3)" in source

    def test_program_compiles_and_runs(self):
        program = worst_case_program(4)
        shared = run_shared(program)
        flat = run_flat(program)
        # the program's value is the inner closure
        assert type(shared.value).__name__ == "SharedClosure"
        assert type(flat.value).__name__ == "FlatClosure"

    def test_terms_grow_linearly(self):
        rows = worst_case_series((2, 3, 4))
        terms = [t for _d, t, _p in rows]
        assert terms[2] - terms[1] == terms[1] - terms[0]

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            worst_case_source(0)

    def test_fj_translation_runs(self):
        program = parse_fj(worst_case_fj_source(3), entry_method="run")
        assert run_fj(program).value.classname == "Z"

    def test_fj_translation_depth_validation(self):
        with pytest.raises(ValueError):
            worst_case_fj_source(0)


class TestParadox:
    def test_functional_source_runs(self):
        program = paradox_functional_program(2, 3)
        result = run_shared(program)
        assert result.value is not None

    def test_find_cxy_lambda(self):
        program = paradox_functional_program(3, 2)
        lam = find_cxy_lambda(program)
        assert lam.is_user

    def test_counts_dataclass(self):
        counts = functional_paradox_counts(
            2, 3, lambda p: analyze_kcfa(p, 1))
        assert isinstance(counts, ParadoxCounts)
        assert counts.product == 6
        assert counts.linear == 5
        assert counts.cxy_environments == 6

    def test_mcfa_counts_small(self):
        counts = functional_paradox_counts(
            4, 4, lambda p: analyze_mcfa(p, 1))
        assert counts.cxy_environments <= 2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            paradox_functional_source(0, 1)
        with pytest.raises(ValueError):
            paradox_fj_source(1, 0)

    def test_fj_source_parses_and_runs(self):
        program = parse_fj(paradox_fj_source(2, 2),
                           entry_method="caller")
        assert run_fj(program).value.classname == "Object"


class TestRandomPrograms:
    def test_deterministic_by_seed(self):
        from repro.generators.random_programs import (
            random_core_expression,
        )
        one = random_core_expression(123, 4)
        two = random_core_expression(123, 4)
        assert one == two

    def test_different_seeds_differ(self):
        from repro.generators.random_programs import (
            random_core_expression,
        )
        exps = {str(random_core_expression(seed, 4))
                for seed in range(20)}
        assert len(exps) > 10

    def test_strategy_importable(self):
        from repro.generators.random_programs import program_strategy
        strategy = program_strategy(3)
        assert strategy is not None
