"""docs/cli.md must not drift from the argparse definitions.

Two directions:

* completeness — every subcommand and every flag the parser accepts is
  mentioned in its section of docs/cli.md;
* honesty — every ``--flag`` token the docs mention exists in the
  parser for some subcommand.
"""

from __future__ import annotations

import argparse
import re
from pathlib import Path

import pytest

from repro.__main__ import _build_parser

DOCS = Path(__file__).resolve().parent.parent / "docs" / "cli.md"


def _subcommands() -> dict[str, argparse.ArgumentParser]:
    parser = _build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    raise AssertionError("parser has no subcommands")


def _flags_of(subparser: argparse.ArgumentParser) -> set[str]:
    flags: set[str] = set()
    for action in subparser._actions:
        if isinstance(action, argparse._HelpAction):
            continue
        flags.update(action.option_strings)
    return flags


def _positionals_of(subparser: argparse.ArgumentParser) -> set[str]:
    return {action.dest for action in subparser._actions
            if not action.option_strings
            and not isinstance(action, argparse._HelpAction)}


def _doc_sections() -> dict[str, str]:
    """Section body per ``## heading`` of docs/cli.md."""
    text = DOCS.read_text(encoding="utf-8")
    sections: dict[str, str] = {}
    name = "_preamble"
    body: list[str] = []
    for line in text.splitlines():
        if line.startswith("## "):
            sections[name] = "\n".join(body)
            name = line[3:].strip()
            body = []
        else:
            body.append(line)
    sections[name] = "\n".join(body)
    return sections


def test_docs_file_exists():
    assert DOCS.is_file(), "docs/cli.md is missing"


def test_every_subcommand_has_a_section():
    sections = _doc_sections()
    for command in _subcommands():
        assert command in sections, \
            f"docs/cli.md lacks a '## {command}' section"


@pytest.mark.parametrize("command", sorted(_subcommands()))
def test_every_flag_is_documented(command):
    subparser = _subcommands()[command]
    section = _doc_sections()[command]
    for flag in _flags_of(subparser):
        assert flag in section, \
            f"flag {flag!r} of {command!r} undocumented in docs/cli.md"
    for positional in _positionals_of(subparser):
        assert positional in section, \
            f"positional {positional!r} of {command!r} undocumented"


def test_every_documented_flag_exists():
    documented = set(re.findall(r"(?<![-\w])(--[a-z][a-z-]*)",
                                DOCS.read_text(encoding="utf-8")))
    known: set[str] = set()
    for subparser in _subcommands().values():
        known |= _flags_of(subparser)
    stale = documented - known
    assert not stale, f"docs/cli.md mentions unknown flags: {stale}"


def test_documented_analysis_choices_match_parser():
    """The analyze section lists exactly the registered analyses."""
    from repro.__main__ import ANALYSES
    section = _doc_sections()["analyze"]
    for choice in ANALYSES:
        assert f"`{choice}`" in section, \
            f"analysis choice {choice!r} missing from docs/cli.md"


def test_documented_env_reps_match_registry():
    """Every env rep a registered analysis declares is documented in
    the analyses section (shared / flat / summary today; a fourth rep
    must land with its docs)."""
    from repro.analysis.registry import registry
    section = _doc_sections()["analyses"]
    reps = {spec.env_rep for spec in registry().specs()
            if spec.env_rep}
    assert reps  # the registry always has Scheme analyses
    for rep in sorted(reps):
        assert f"`{rep}`" in section, \
            f"env rep {rep!r} undocumented in docs/cli.md"


def test_analyses_knob_columns_documented_and_served():
    """The listing serves boolean ``specialized``/``codegen`` knob
    columns for every analysis, and the analyses section documents
    both — a new engine-tier column must land with its docs."""
    from repro.analysis.registry import registry_listing
    for row in registry_listing(None):
        assert isinstance(row["specialized"], bool), row["name"]
        assert isinstance(row["codegen"], bool), row["name"]
    section = _doc_sections()["analyses"]
    for column in ("specialized", "codegen"):
        assert f"`{column}`" in section, \
            f"analyses column {column!r} undocumented in docs/cli.md"


def test_analyses_table_renders_knob_columns():
    """`python -m repro analyses` prints the knob columns (the table
    the docs describe is the table the CLI prints)."""
    from repro.analysis.registry import registry_listing
    from repro.reporting import analyses_report
    rows = registry_listing(None)
    report = analyses_report(rows, None, len(rows), "test")
    header = report.splitlines()[0]
    assert "specialized" in header and "codegen" in header
    assert "pushdown" in report  # a registered opt-out renders "no"
