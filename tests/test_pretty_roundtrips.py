"""Round-trip properties for the pretty printers.

Pretty output must re-read to an equivalent program — checked
structurally for hand-written programs and behaviourally (same
concrete result) for random ones.
"""

import pytest
from hypothesis import HealthCheck, given, settings
import hypothesis.strategies as st

from repro.benchsuite import SUITE
from repro.concrete import run_shared
from repro.cps.parser import parse_cps
from repro.cps.pretty import pretty_cps
from repro.generators.random_programs import random_program
from repro.scheme.desugar import desugar_program
from repro.scheme.pretty import pretty
from repro.scheme.values import scheme_repr

SETTINGS = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


class TestSchemePretty:
    # stable forms: desugaring is structurally idempotent for these
    STABLE_SOURCES = [
        "42",
        "(lambda (x) x)",
        "(if #t 1 2)",
        "(letrec ((f (lambda (n) (f n)))) f)",
        "(+ 1 (car (cons 2 '())))",
        "'(a (b) 3)",
    ]
    # let introduces a fresh temp layer per desugar pass, so only the
    # behavioural round-trip can hold for it
    EVAL_SOURCES = STABLE_SOURCES[:1] + [
        "(let ((x 1)) (+ x 1))",
        "(let ((x 1) (y 2)) (cons x y))",
        "(begin 1 2 3)",
    ]

    @pytest.mark.parametrize("source", STABLE_SOURCES)
    def test_roundtrip_structural(self, source):
        import re

        def canonical(exp) -> str:
            from repro.scheme.alpha import alpha_rename
            from repro.util.gensym import GensymFactory
            text = pretty(alpha_rename(exp, GensymFactory()))
            return re.sub(r"%\d+", "%N", text)

        exp = desugar_program(source)
        again = desugar_program(pretty(exp))
        assert canonical(again) == canonical(exp)

    @pytest.mark.parametrize("source", EVAL_SOURCES)
    def test_roundtrip_behavioural(self, source):
        from repro.scheme.interp import run_source
        exp = desugar_program(source)
        assert scheme_repr(run_source(pretty(exp))) == \
            scheme_repr(run_source(source))

    def test_wide_forms_wrap(self):
        source = ("(lambda (abcdefgh ijklmnop qrstuvwx) "
                  "(+ abcdefgh ijklmnop qrstuvwx "
                  "abcdefgh ijklmnop qrstuvwx))")
        text = pretty(desugar_program(source), width=40)
        assert "\n" in text
        again = desugar_program(text)
        assert pretty(again, width=40) == text


class TestCPSPretty:
    @pytest.mark.parametrize("bench", [b.name for b in SUITE])
    def test_suite_roundtrip(self, bench, suite_compiled):
        program = suite_compiled[bench]
        reparsed = parse_cps(pretty_cps(program.root))
        assert reparsed.stats() == program.stats()

    @pytest.mark.parametrize("bench", ["eta", "sat"])
    def test_suite_roundtrip_behavioural(self, bench, suite_compiled):
        from repro.benchsuite import BY_NAME
        program = suite_compiled[bench]
        reparsed = parse_cps(pretty_cps(program.root))
        assert run_shared(reparsed).value == BY_NAME[bench].expected

    @given(seed=st.integers(0, 2 ** 32 - 1), depth=st.integers(1, 4))
    @SETTINGS
    def test_random_roundtrip_behavioural(self, seed, depth):
        program = random_program(seed, depth)
        reparsed = parse_cps(pretty_cps(program.root))
        assert scheme_repr(run_shared(reparsed).value) == \
            scheme_repr(run_shared(program).value)

    @given(seed=st.integers(0, 2 ** 32 - 1), depth=st.integers(1, 4))
    @SETTINGS
    def test_random_roundtrip_structural(self, seed, depth):
        program = random_program(seed, depth)
        reparsed = parse_cps(pretty_cps(program.root))
        assert reparsed.stats() == program.stats()
