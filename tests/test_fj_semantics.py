"""Tests for the FJ concrete machine and both abstract machines."""

import pytest

from repro.errors import EvaluationError, FuelExhausted
from repro.fj import (
    analyze_fj_kcfa, analyze_fj_poly, parse_fj, run_fj,
)
from repro.fj.concrete import FJObjectVal
from repro.fj.examples import (
    ALL_EXAMPLES, ANF_EXAMPLE, DISPATCH, LINKED_LIST, OO_IDENTITY,
    PAIRS,
)
from repro.fj.kcfa import AObj
from repro.fj.poly import PObj
from repro.fj.soundness import (
    check_fj_poly_soundness, check_fj_soundness,
)


class TestConcreteMachine:
    def test_pairs_swap(self):
        result = run_fj(parse_fj(PAIRS))
        assert isinstance(result.value, FJObjectVal)
        assert result.value.classname == "B"

    def test_dispatch(self):
        result = run_fj(parse_fj(DISPATCH))
        assert result.value.classname == "Meow"

    def test_recursion_over_list(self):
        result = run_fj(parse_fj(LINKED_LIST))
        assert result.value.classname == "Cons"

    def test_anf_example(self):
        result = run_fj(parse_fj(ANF_EXAMPLE))
        assert result.value.classname == "B"

    def test_both_tick_policies_same_value(self):
        for source in ALL_EXAMPLES.values():
            program = parse_fj(source)
            invocation = run_fj(program, tick_policy="invocation")
            statement = run_fj(program, tick_policy="statement")
            assert invocation.value.classname == \
                statement.value.classname

    def test_field_values_stored(self):
        source = """
        class Box extends Object {
          Object v;
          Box(Object x) { super(); this.v = x; }
          Object get() { return this.v; }
        }
        class A extends Object { A() { super(); } }
        class Main extends Object {
          Main() { super(); }
          Object main() {
            Box b;
            b = new Box(new A());
            return b.get();
          }
        }
        """
        result = run_fj(parse_fj(source))
        assert result.value.classname == "A"

    def test_bad_cast_raises(self):
        source = """
        class A extends Object { A() { super(); } }
        class B extends Object { B() { super(); } }
        class Main extends Object {
          Main() { super(); }
          Object main() {
            Object x;
            B y;
            x = new A();
            y = (B) x;
            return y;
          }
        }
        """
        with pytest.raises(EvaluationError):
            run_fj(parse_fj(source))

    def test_good_cast_passes(self):
        source = """
        class A extends Object { A() { super(); } }
        class Main extends Object {
          Main() { super(); }
          Object main() {
            Object x;
            A y;
            x = new A();
            y = (A) x;
            return y;
          }
        }
        """
        assert run_fj(parse_fj(source)).value.classname == "A"

    def test_missing_method_raises(self):
        source = """
        class Main extends Object {
          Main() { super(); }
          Object main() {
            Object x;
            x = this.nope();
            return x;
          }
        }
        """
        program = parse_fj(source)
        # 'nope' resolves nowhere at runtime
        with pytest.raises(EvaluationError):
            run_fj(program)

    def test_fuel(self):
        source = """
        class Main extends Object {
          Main() { super(); }
          Object spin() { return this.spin(); }
          Object main() { return this.spin(); }
        }
        """
        with pytest.raises(FuelExhausted):
            run_fj(parse_fj(source), fuel=300)

    def test_write_log_recorded(self):
        result = run_fj(parse_fj(PAIRS))
        assert result.writes
        assert all(len(entry) == 2 for entry in result.writes)


class TestAbstractKCFA:
    def test_dispatch_targets_resolved(self):
        program = parse_fj(DISPATCH)
        result = analyze_fj_kcfa(program, 1)
        # pet's a.speak() site sees both Dog.speak and Cat.speak
        speak_sites = [targets for targets
                       in result.invoke_targets.values()
                       if any("speak" in t for t in targets)]
        assert any(len(t) == 2 for t in speak_sites)

    def test_halt_covers_concrete(self):
        for source in ALL_EXAMPLES.values():
            program = parse_fj(source)
            concrete = run_fj(program)
            result = analyze_fj_kcfa(program, 1)
            classes = {obj.classname for obj in result.halt_values
                       if isinstance(obj, AObj)}
            assert concrete.value.classname in classes

    def test_points_to_query(self):
        program = parse_fj(PAIRS)
        result = analyze_fj_kcfa(program, 1)
        objs = result.points_to("p")
        assert {obj.classname for obj in objs} == {"Pair"}

    def test_method_contexts_k1_vs_k0(self):
        program = parse_fj(OO_IDENTITY)
        k0 = analyze_fj_kcfa(program, 0)
        k1 = analyze_fj_kcfa(program, 1)
        assert k1.method_context_count("Id.identity") == 2
        assert k0.method_context_count("Id.identity") == 1

    def test_k1_separates_identity_receivers(self):
        program = parse_fj(OO_IDENTITY)
        result = analyze_fj_kcfa(program, 1)
        # under k=1 the two identity calls keep their arguments apart:
        # each x binding holds exactly one abstract object.
        x_addrs = [(name, time) for (name, time)
                   in result.store.addresses() if name == "x"]
        assert len(x_addrs) == 2
        assert all(len(result.store.get(a)) == 1 for a in x_addrs)

    def test_k0_merges_identity_receivers(self):
        program = parse_fj(OO_IDENTITY)
        result = analyze_fj_kcfa(program, 0)
        x_addrs = [(name, time) for (name, time)
                   in result.store.addresses() if name == "x"]
        assert len(x_addrs) == 1
        assert len(result.store.get(x_addrs[0])) == 2

    def test_monomorphic_call_sites(self):
        program = parse_fj(PAIRS)
        result = analyze_fj_kcfa(program, 1)
        assert result.monomorphic_call_sites()

    def test_statement_policy_runs(self):
        program = parse_fj(PAIRS)
        result = analyze_fj_kcfa(program, 1, tick_policy="statement")
        assert result.halt_values

    def test_summary(self):
        result = analyze_fj_kcfa(parse_fj(PAIRS), 1)
        summary = result.summary()
        assert summary["analysis"] == "FJ-k-CFA"
        assert summary["objects"] >= 3


class TestPolyCollapse:
    """§4.4: the collapsed machine agrees with the map-based one."""

    @pytest.mark.parametrize("name", list(ALL_EXAMPLES))
    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_same_invoke_targets(self, name, k):
        program = parse_fj(ALL_EXAMPLES[name])
        full = analyze_fj_kcfa(program, k)
        poly = analyze_fj_poly(program, k)
        assert full.invoke_targets == poly.invoke_targets

    @pytest.mark.parametrize("name", list(ALL_EXAMPLES))
    def test_same_method_contexts(self, name):
        program = parse_fj(ALL_EXAMPLES[name])
        full = analyze_fj_kcfa(program, 1)
        poly = analyze_fj_poly(program, 1)
        assert full.method_contexts == poly.method_contexts

    @pytest.mark.parametrize("name", list(ALL_EXAMPLES))
    def test_same_objects_by_class_and_site(self, name):
        # the collapsed machine may keep finer contexts for field-less
        # classes; class+site projections must coincide.
        program = parse_fj(ALL_EXAMPLES[name])
        full = analyze_fj_kcfa(program, 1)
        poly = analyze_fj_poly(program, 1)
        assert {(o.classname, o.site) for o in full.objects} == \
            {(o.classname, o.site) for o in poly.objects}

    def test_poly_no_less_precise_with_fields(self):
        # on a program where every allocated class has fields, the
        # collapse loses nothing: identical object counts.
        program = parse_fj(PAIRS)
        full = analyze_fj_kcfa(program, 1)
        poly = analyze_fj_poly(program, 1)
        full_pairs = {o for o in full.objects
                      if o.classname == "Pair"}
        poly_pairs = {o for o in poly.objects
                      if o.classname == "Pair"}
        assert len(full_pairs) == len(poly_pairs)


class TestFJSoundness:
    @pytest.mark.parametrize("name", list(ALL_EXAMPLES))
    @pytest.mark.parametrize("policy", ["invocation", "statement"])
    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_kcfa_sound(self, name, policy, k):
        program = parse_fj(ALL_EXAMPLES[name])
        concrete = run_fj(program, tick_policy=policy,
                          record_trace=True)
        result = analyze_fj_kcfa(program, k, tick_policy=policy)
        report = check_fj_soundness(result, concrete)
        assert report, report.violations[:5]

    @pytest.mark.parametrize("name", list(ALL_EXAMPLES))
    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_poly_sound(self, name, k):
        program = parse_fj(ALL_EXAMPLES[name])
        concrete = run_fj(program, record_trace=True)
        result = analyze_fj_poly(program, k)
        report = check_fj_poly_soundness(result, concrete)
        assert report, report.violations[:5]
