"""Tests for m-CFA (paper §5) — including footnote 5's semantics:
m-CFA contexts are the top m stack frames, not the last m calls."""

import pytest

from repro.analysis import (
    AConst, BASIC, analyze_kcfa, analyze_mcfa, analyze_poly_kcfa,
    analyze_zerocfa,
)
from repro.scheme.cps_transform import compile_program


class TestBasicFlow:
    def test_constant(self):
        result = analyze_mcfa(compile_program("42"), 1)
        assert result.halt_values == {AConst(42)}

    def test_application(self):
        result = analyze_mcfa(
            compile_program("((lambda (x) x) 5)"), 1)
        assert AConst(5) in result.halt_values

    def test_prim(self):
        result = analyze_mcfa(compile_program("(* 2 3)"), 1)
        assert result.halt_values == {BASIC}

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            analyze_mcfa(compile_program("1"), -2)


class TestContextSensitivity:
    def test_m1_separates_direct_calls(self):
        source = "(define (id x) x) (cons (id 1) (id 2))"
        program = compile_program(source)
        result = analyze_mcfa(program, 1)
        values = {v for v in result.halt_values}
        # the pair flows precisely: halt gets the pair, and each call
        # context keeps its constant
        x_addrs = [(name, env) for (name, env) in
                   result.store.addresses() if name.startswith("x")]
        assert len(x_addrs) == 2

    def test_m0_merges(self):
        source = "(define (id x) x) (cons (id 1) (id 2))"
        result = analyze_mcfa(compile_program(source), 0)
        x_addrs = [(name, env) for (name, env) in
                   result.store.addresses() if name.startswith("x")]
        assert len(x_addrs) == 1


class TestInterveningCall:
    """The paper's §6 example: an innocuous call must not destroy
    m-CFA's context-sensitivity (it does destroy poly k-CFA's)."""

    SOURCE = """
    (define (do-something) 42)
    (define (identity x) (do-something) x)
    (cons (identity 3) (identity 4))
    """

    def test_m1_keeps_bindings_distinct(self):
        result = analyze_mcfa(compile_program(self.SOURCE), 1)
        # both AConst(3) and AConst(4) flow, but into separate
        # addresses — find the binding of x per context.
        x_addrs = [(name, env) for (name, env) in
                   result.store.addresses() if name.startswith("x")]
        flows = [result.store.get(addr) for addr in x_addrs]
        assert all(len(flow) == 1 for flow in flows)

    def test_poly_k1_merges(self):
        result = analyze_poly_kcfa(compile_program(self.SOURCE), 1)
        x_addrs = [(name, env) for (name, env) in
                   result.store.addresses() if name.startswith("x")]
        merged = [flow for flow in
                  (result.store.get(a) for a in x_addrs)
                  if len(flow) == 2]
        assert merged  # some x binding holds both constants

    def test_k1_agrees_with_m1(self):
        program = compile_program(self.SOURCE)
        k1 = analyze_kcfa(program, 1)
        m1 = analyze_mcfa(program, 1)
        assert k1.supported_inlinings() == m1.supported_inlinings()


class TestReturnFlowPrecision:
    """The final-value version of the same §6 example."""

    PLAIN = """
    (define (identity x) x)
    (identity 3)
    (identity 4)
    """
    PERTURBED = """
    (define (do-something) 42)
    (define (identity x) (do-something) x)
    (identity 3)
    (identity 4)
    """

    def test_plain_all_context_sensitive_agree(self):
        program = compile_program(self.PLAIN)
        for analyze in (lambda p: analyze_kcfa(p, 1),
                        lambda p: analyze_mcfa(p, 1),
                        lambda p: analyze_poly_kcfa(p, 1)):
            assert analyze(program).halt_values == {AConst(4)}

    def test_perturbed_poly_degenerates(self):
        program = compile_program(self.PERTURBED)
        assert analyze_kcfa(program, 1).halt_values == {AConst(4)}
        assert analyze_mcfa(program, 1).halt_values == {AConst(4)}
        assert analyze_poly_kcfa(program, 1).halt_values == \
            {AConst(3), AConst(4)}
        assert analyze_zerocfa(program).halt_values == \
            {AConst(3), AConst(4)}


class TestFootnote5:
    """k=1 context after return-from-b is the call to b; m=1 context
    is the call to a (the frame still on the stack)."""

    SOURCE = """
    (define (b) 7)
    (define (a x) (b) x)
    (cons (a 1) (a 2))
    """

    def test_m1_context_is_caller_frame(self):
        result = analyze_mcfa(compile_program(self.SOURCE), 1)
        # x stays split per call-to-a: two singleton addresses.
        x_addrs = [(name, env) for (name, env) in
                   result.store.addresses() if name.startswith("x")]
        assert len(x_addrs) == 2
        assert all(len(result.store.get(a)) == 1 for a in x_addrs)

    def test_entry_environments_are_call_frames(self):
        program = compile_program(self.SOURCE)
        result = analyze_mcfa(program, 1)
        # the lambda for a is entered under two different top frames
        a_lam = next(lam for lam in program.user_lams
                     if len(lam.params) == 2
                     and result.environment_count(lam) == 2)
        assert result.environment_count(a_lam) == 2


class TestHierarchyAgreement:
    def test_m0_equals_k0(self, small_programs):
        """[m=0]CFA and [k=0]CFA are the same analysis (§5.3)."""
        for name, (_source, program) in small_programs.items():
            m0 = analyze_mcfa(program, 0)
            k0 = analyze_kcfa(program, 0)
            assert m0.halt_values == k0.halt_values, name
            assert m0.supported_inlinings() == \
                k0.supported_inlinings(), name
            m0_callees = {label: frozenset(l.label for l in lams)
                          for label, lams in m0.callees.items()}
            k0_callees = {label: frozenset(l.label for l in lams)
                          for label, lams in k0.callees.items()}
            assert m0_callees == k0_callees, name

    def test_poly_k0_equals_zerocfa(self, small_programs):
        for name, (_source, program) in small_programs.items():
            p0 = analyze_poly_kcfa(program, 0)
            z = analyze_zerocfa(program)
            assert p0.halt_values == z.halt_values, name

    def test_m1_at_least_as_precise_as_m0_on_inlinings(
            self, small_programs):
        for name, (_source, program) in small_programs.items():
            m1 = analyze_mcfa(program, 1)
            m0 = analyze_mcfa(program, 0)
            assert m1.supported_inlinings() >= \
                m0.supported_inlinings(), name


class TestPolynomialScaling:
    def test_worst_case_stays_tame(self):
        """m-CFA's steps grow polynomially on Van Horn–Mairson terms
        where k-CFA's grow exponentially."""
        from repro.generators.worstcase import worst_case_program
        steps = []
        for depth in (4, 5, 6, 7, 8):
            program = worst_case_program(depth)
            steps.append(analyze_mcfa(program, 1).steps)
        # growth ratio stays small (linear-ish), far from doubling
        ratios = [b / a for a, b in zip(steps, steps[1:])]
        assert max(ratios) < 1.8

    def test_kcfa_doubles_on_worst_case(self):
        from repro.generators.worstcase import worst_case_program
        steps = []
        for depth in (4, 5, 6, 7, 8):
            program = worst_case_program(depth)
            steps.append(analyze_kcfa(program, 1).steps)
        ratios = [b / a for a, b in zip(steps, steps[1:])]
        assert min(ratios) > 1.5  # roughly doubles per level
