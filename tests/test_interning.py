"""Interned bitset flow sets must be invisible in every result.

The tentpole property: running any analysis with the interned
:class:`~repro.analysis.interning.ValueTable` produces an
:class:`~repro.analysis.results.AnalysisResult` *identical* to the
pre-interning object domain (:class:`~repro.analysis.interning.
PlainTable`) — same decoded stores, same call graphs, same
environments, same step counts.  Checked across the §6 suite, the
Van Horn–Mairson worst-case ladder, random programs and the FJ
examples, plus unit tests of the table protocol itself.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    analyze_kcfa, analyze_kcfa_gc, analyze_kcfa_naive, analyze_mcfa,
    analyze_poly_kcfa, analyze_zerocfa,
)
from repro.analysis.domains import (
    AConst, APair, BASIC, EMPTY_BENV, KClo,
)
from repro.analysis.interning import PlainTable, ValueTable
from repro.benchsuite.programs import BY_NAME
from repro.generators.random_programs import random_program
from repro.generators.worstcase import worst_case_program


#: Engine-scheduling artifacts: the step counter depends on the order
#: successors are enqueued, and a frozenset iterates in hash order
#: while a bitset iterates in interning order, so re-enqueue
#: interleavings (and hence pop counts) legitimately differ between
#: representations.  Everything *semantic* must be identical.
SCHEDULING_KEYS = ("elapsed", "steps")


def assert_same_analysis(interned, plain):
    """Two AnalysisResults must agree on every semantic quantity."""
    assert interned.store.as_dict() == plain.store.as_dict()
    assert interned.callees == plain.callees
    assert interned.entries == plain.entries
    assert interned.halt_values == plain.halt_values
    assert interned.unknown_operator == plain.unknown_operator
    assert interned.configs == plain.configs
    assert interned.config_count == plain.config_count
    assert interned.state_count == plain.state_count
    summary_a = {key: value for key, value
                 in interned.summary().items()
                 if key not in SCHEDULING_KEYS}
    summary_b = {key: value for key, value
                 in plain.summary().items()
                 if key not in SCHEDULING_KEYS}
    assert summary_a == summary_b


SCHEME_ANALYZERS = {
    "kcfa1": lambda p, plain: analyze_kcfa(p, 1, plain=plain),
    "mcfa1": lambda p, plain: analyze_mcfa(p, 1, plain=plain),
    "poly1": lambda p, plain: analyze_poly_kcfa(p, 1, plain=plain),
    "zero": lambda p, plain: analyze_zerocfa(p, plain=plain),
}


class TestSuiteEquivalence:
    @pytest.mark.parametrize("bench_name", sorted(BY_NAME))
    @pytest.mark.parametrize("analyzer", sorted(SCHEME_ANALYZERS))
    def test_suite_program(self, bench_name, analyzer):
        program = BY_NAME[bench_name].compile()
        run = SCHEME_ANALYZERS[analyzer]
        assert_same_analysis(run(program, False), run(program, True))


class TestWorstCaseEquivalence:
    @pytest.mark.parametrize("depth", [2, 4, 6, 8])
    def test_kcfa_ladder(self, depth):
        program = worst_case_program(depth)
        assert_same_analysis(analyze_kcfa(program, 1),
                             analyze_kcfa(program, 1, plain=True))

    @pytest.mark.parametrize("depth", [2, 4, 6, 8])
    def test_mcfa_ladder(self, depth):
        program = worst_case_program(depth)
        assert_same_analysis(analyze_mcfa(program, 1),
                             analyze_mcfa(program, 1, plain=True))


class TestRandomProgramEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_kcfa(self, seed):
        program = random_program(seed, 4)
        assert_same_analysis(analyze_kcfa(program, 1),
                             analyze_kcfa(program, 1, plain=True))

    @pytest.mark.parametrize("seed", range(6))
    def test_random_naive_and_gc(self, seed):
        """The naive per-state-store drivers agree too."""
        program = random_program(seed, 3)
        assert_same_analysis(
            analyze_kcfa_naive(program, 0),
            analyze_kcfa_naive(program, 0, plain=True))
        assert_same_analysis(
            analyze_kcfa_gc(program, 0),
            analyze_kcfa_gc(program, 0, plain=True))


class TestFJEquivalence:
    @pytest.mark.parametrize("example", ["pairs", "dispatch"])
    def test_fj_machines(self, example):
        from repro.fj import analyze_fj_kcfa, parse_fj
        from repro.fj.examples import ALL_EXAMPLES
        from repro.fj.poly import analyze_fj_poly
        program = parse_fj(ALL_EXAMPLES[example])
        for analyze in (analyze_fj_kcfa, analyze_fj_poly):
            interned = analyze(program, 1)
            plain = analyze(program, 1, plain=True)
            assert interned.store.as_dict() == plain.store.as_dict()
            assert interned.invoke_targets == plain.invoke_targets
            assert interned.method_contexts == plain.method_contexts
            assert interned.objects == plain.objects
            assert interned.halt_values == plain.halt_values
            assert interned.configs == plain.configs


class TestValueTable:
    def test_bit_for_is_stable(self):
        table = ValueTable()
        bit = table.bit_for(BASIC)
        assert table.bit_for(BASIC) == bit
        assert bit == 1  # first interned value gets bit 0

    def test_distinct_values_get_distinct_bits(self):
        table = ValueTable()
        bits = {table.bit_for(AConst(n)) for n in range(10)}
        assert len(bits) == 10

    def test_encode_decode_roundtrip(self):
        table = ValueTable()
        values = frozenset({BASIC, AConst(1), AConst("x"),
                            APair(("car@1", ()), ("cdr@1", ()))})
        assert table.decode(table.encode(values)) == values

    def test_decode_iter_matches_decode(self):
        table = ValueTable()
        mask = table.encode({AConst(n) for n in range(5)})
        assert frozenset(table.decode_iter(mask)) == table.decode(mask)

    def test_mask_len(self):
        table = ValueTable()
        mask = table.encode({AConst(1), AConst(2), BASIC})
        assert table.mask_len(mask) == 3

    def test_join_is_bitwise_or(self):
        table = ValueTable()
        one = table.encode({AConst(1)})
        two = table.encode({AConst(2)})
        assert table.decode(one | two) == {AConst(1), AConst(2)}

    def test_truthiness_masks(self):
        table = ValueTable()
        true_bit = table.bit_for(AConst(True))
        false_bit = table.bit_for(AConst(False))
        basic_bit = table.bit_for(BASIC)
        assert table.any_truthy(true_bit)
        assert not table.any_falsy(true_bit)
        assert table.any_falsy(false_bit)
        assert not table.any_truthy(false_bit)
        assert table.any_truthy(basic_bit)
        assert table.any_falsy(basic_bit)

    def test_bool_and_int_constants_are_distinct(self):
        """The regression the first interning draft hit: Python says
        True == 1 and False == 0, so a naive hash-consing table hands
        #f the bit of 0 — whose truthiness is different — and whole
        else-branches vanish."""
        table = ValueTable()
        zero_bit = table.bit_for(AConst(0))  # interned first
        false_bit = table.bit_for(AConst(False))
        assert zero_bit != false_bit
        assert table.any_falsy(false_bit)
        assert not table.any_falsy(zero_bit)
        assert AConst(True) != AConst(1)
        assert AConst(False) != AConst(0)

    def test_empty_mask(self):
        table = ValueTable()
        assert table.empty == 0
        assert table.decode(table.empty) == frozenset()


class TestPlainTable:
    def test_masks_are_frozensets(self):
        table = PlainTable()
        mask = table.bit_for(BASIC)
        assert mask == frozenset({BASIC})
        assert table.decode(mask) is mask

    def test_union_and_truthiness(self):
        table = PlainTable()
        mask = table.bit_for(AConst(False)) | table.bit_for(AConst(3))
        assert table.mask_len(mask) == 2
        assert table.any_truthy(mask)
        assert table.any_falsy(mask)

    def test_interned_flag(self):
        assert ValueTable.interned is True
        assert PlainTable.interned is False


class TestStoreMaskAPI:
    def test_get_decodes_to_values(self):
        from repro.analysis.domains import AbsStore
        store = AbsStore()
        store.join(("x", ()), {AConst(1), BASIC})
        assert store.get(("x", ())) == {AConst(1), BASIC}
        mask = store.get_mask(("x", ()))
        assert store.table.decode(mask) == {AConst(1), BASIC}

    def test_join_mask_growth_detection(self):
        from repro.analysis.domains import AbsStore
        store = AbsStore()
        one = store.table.encode({AConst(1)})
        both = store.table.encode({AConst(1), AConst(2)})
        assert store.join_mask(("x", ()), one) is True
        assert store.join_mask(("x", ()), one) is False
        assert store.join_mask(("x", ()), both) is True

    def test_interning_shrinks_nothing_observable(self):
        """KClo identity is preserved through a store round-trip."""
        from repro.analysis.domains import AbsStore
        from repro.cps.syntax import HaltCall, Lam, LamKind, Ref
        lam = Lam(LamKind.USER, ("x",), HaltCall(Ref("x"), 0), 1)
        clo = KClo(lam, EMPTY_BENV)
        store = AbsStore()
        store.join(("f", ()), {clo})
        (stored,) = store.get(("f", ()))
        assert stored is clo
