"""Tests for the parallel batch benchmark runner."""

from __future__ import annotations

import json

import pytest

from repro.benchsuite.runner import (
    BenchTask, build_matrix, default_programs, run_batch, run_task,
)
from repro.errors import ReproError


class TestMatrix:
    def test_pairs_analyses_with_compatible_programs(self):
        tasks = build_matrix(["eta", "pairs"],
                             ["mcfa", "fj-poly"], [0, 1])
        cells = {(task.program, task.analysis, task.parameter)
                 for task in tasks}
        assert cells == {
            ("eta", "mcfa", 0), ("eta", "mcfa", 1),
            ("pairs", "fj-poly", 0), ("pairs", "fj-poly", 1),
        }

    def test_zero_emitted_once_despite_many_contexts(self):
        tasks = build_matrix(["eta"], ["zero"], [0, 1, 2])
        assert len(tasks) == 1

    def test_pushdown_emitted_once_despite_many_contexts(self):
        # The pushdown summary rep is context-free like 0CFA: no knob.
        tasks = build_matrix(["eta"], ["pushdown"], [0, 1, 2])
        assert len(tasks) == 1

    def test_unknown_program_rejected(self):
        with pytest.raises(ReproError):
            build_matrix(["nope"], ["mcfa"], [0])

    def test_unknown_analysis_rejected_not_dropped(self):
        with pytest.raises(ReproError, match="mfca"):
            build_matrix(["eta"], ["kcfa", "mfca"], [0])

    def test_copies_apply_to_scheme_programs_only(self):
        tasks = build_matrix(["eta", "pairs"], ["mcfa", "fj-poly"],
                             [1], copies=3)
        by_program = {task.program: task for task in tasks}
        assert by_program["eta"].copies == 3
        assert by_program["pairs"].copies == 1

    def test_default_programs_cover_both_languages(self):
        names = default_programs()
        assert "eta" in names and "pairs" in names

    def test_specialize_axis_doubles_the_matrix(self):
        tasks = build_matrix(["eta"], ["zero"], [0],
                             specialize=["on", "off"])
        assert [task.specialize for task in tasks] == ["on", "off"]
        # Distinct task ids so a one-report before/after matrix keeps
        # deterministic row order.
        assert [task.task_id for task in tasks] == \
            ["eta:zero(0)", "eta:zero(0)[generic]"]

    def test_unknown_specialize_mode_rejected(self):
        with pytest.raises(ReproError, match="specialize"):
            build_matrix(["eta"], ["zero"], [0],
                         specialize=["sometimes"])

    def test_obj_depth_axis_expands_the_hybrid_ladder(self):
        tasks = build_matrix(["pairs"], ["fj-hybrid"], [1],
                             obj_depths=[0, 2, 1])
        assert [task.obj_depth for task in tasks] == [0, 1, 2]
        assert tasks[0].task_id == "pairs:fj-hybrid(1,obj=0)"

    def test_obj_depth_rejected_for_non_hybrid_analyses(self):
        with pytest.raises(ReproError, match="obj-depth"):
            build_matrix(["pairs"], ["fj-hybrid", "fj-poly"], [1],
                         obj_depths=[1])

    def test_fj_chain_ladder_is_an_fj_program(self):
        tasks = build_matrix(["fjchain5"], ["fj-poly", "zero"], [0])
        assert [task.analysis for task in tasks] == ["fj-poly"]

    def test_fj_chain_task_runs(self):
        row = run_task(BenchTask("fjchain5", "fj-poly", 0))
        assert row["status"] == "ok"
        assert row["engine_path"] == "codegen:zero-fj-flat"

    def test_fj_random_ladder_is_an_fj_program(self):
        tasks = build_matrix(["fjrand42"], ["fj-poly", "zero"], [0])
        assert [task.analysis for task in tasks] == ["fj-poly"]

    def test_fj_random_resolves_deterministically(self):
        """`bench --programs fjrand42` must mean the same program on
        every invocation: the seed alone pins the generated source,
        and re-running the cell reproduces the result columns."""
        from repro.benchsuite.runner import task_source
        from repro.generators.fj_random import fj_random_source
        task = BenchTask("fjrand42", "fj-poly", 0)
        assert task_source(task) == task_source(task)
        assert task_source(task) == fj_random_source(42)
        first = run_task(task)
        second = run_task(task)
        assert first["status"] == "ok"
        volatile = ("pid", "wall_seconds", "elapsed")
        strip = lambda row: {key: value for key, value in row.items()
                             if key not in volatile}
        assert strip(first) == strip(second)

    def test_fj_random_via_bench_cli(self, capsys, tmp_path):
        from repro.__main__ import main
        assert main(["bench", "--programs", "fjrand42",
                     "--analyses", "fj-poly", "--contexts", "0",
                     "--serial", "--output", "-"]) == 0
        out = capsys.readouterr().out
        assert "fjrand42:fj-poly(0)" in out

    def test_repeat_keeps_one_row(self):
        row = run_task(BenchTask("eta", "zero", 0, repeat=3))
        assert row["status"] == "ok"
        assert row["repeat"] == 3


class TestRunTask:
    def test_ok_row_carries_summary(self):
        row = run_task(BenchTask("eta", "mcfa", 1))
        assert row["status"] == "ok"
        assert row["steps"] > 0
        assert row["task"] == "eta:mcfa(1)"

    def test_row_reports_monomorphic_sites(self):
        # The client-layer precision metric rides every summary: both
        # languages' bench rows carry it, and the table renders it.
        from repro.reporting import bench_report_table
        scheme = run_task(BenchTask("eta", "mcfa", 1))
        assert scheme["mono_sites"] >= 0
        fj = run_task(BenchTask("pairs", "fj-kcfa", 1))
        assert fj["mono_sites"] >= 0
        report = run_batch([BenchTask("eta", "mcfa", 1)],
                           serial=True)
        table = bench_report_table(report)
        header = table.splitlines()[0]
        assert "mono" in header
        assert str(scheme["mono_sites"]) in table

    def test_timeout_is_a_status_not_an_error(self):
        row = run_task(BenchTask("interp", "kcfa-naive", 1,
                                 timeout=0.2))
        assert row["status"] == "timeout"
        assert row["wall_seconds"] >= 0.2

    def test_fj_task_runs(self):
        row = run_task(BenchTask("pairs", "fj-kcfa", 1))
        assert row["status"] == "ok"
        assert row["configs"] > 0

    def test_broken_task_reports_error(self):
        row = run_task(BenchTask("eta", "kcfa", -1))
        assert row["status"] == "error"
        assert "k must be non-negative" in row["error"]

    def test_rows_record_which_engine_path_ran(self):
        codegen = run_task(BenchTask("eta", "zero", 0))
        compiled = run_task(BenchTask("eta", "zero", 0,
                                      codegen="off"))
        generic = run_task(BenchTask("eta", "zero", 0,
                                     specialize="off"))
        assert codegen["engine_path"] == "codegen:zero-flat"
        assert codegen["specialize"] == "on"
        assert codegen["codegen"] == "on"
        assert compiled["engine_path"] == "specialized:zero-flat"
        assert compiled["codegen"] == "off"
        assert generic["engine_path"] == "generic"
        assert generic["specialize"] == "off"
        # Byte-identity across paths: every result column agrees —
        # only timing, pid and the path labels may differ.
        volatile = ("pid", "wall_seconds", "elapsed", "specialize",
                    "codegen", "engine_path", "task")
        strip = lambda row: {key: value for key, value in row.items()
                             if key not in volatile}
        assert strip(codegen) == strip(compiled)
        assert strip(codegen) == strip(generic)

    def test_codegen_axis_rides_on_specialization(self):
        tasks = build_matrix(["eta"], ["zero"], [0],
                             specialize=["on", "off"],
                             codegen=["on", "off"])
        assert [(task.specialize, task.codegen)
                for task in tasks] == \
            [("on", "on"), ("on", "off"), ("off", "off")]
        assert [task.task_id for task in tasks] == \
            ["eta:zero(0)", "eta:zero(0)[nocodegen]",
             "eta:zero(0)[generic]"]

    def test_unknown_codegen_mode_rejected(self):
        with pytest.raises(ReproError, match="codegen"):
            build_matrix(["eta"], ["zero"], [0],
                         codegen=["sometimes"])

    def test_opted_out_spec_reports_generic_even_when_asked(self):
        row = run_task(BenchTask("eta", "kcfa-naive", 1))
        assert row["status"] == "ok"
        assert row["engine_path"] == "generic"

    def test_obj_depth_row_runs_and_is_tagged(self):
        row = run_task(BenchTask("pairs", "fj-hybrid", 1,
                                 obj_depth=2))
        assert row["status"] == "ok"
        assert row["obj_depth"] == 2
        assert row["task"] == "pairs:fj-hybrid(1,obj=2)"


class TestRunBatch:
    def test_serial_batch_preserves_task_order(self):
        tasks = build_matrix(["eta", "map"], ["mcfa", "zero"], [0])
        report = run_batch(tasks, serial=True)
        assert [row["task"] for row in report.rows] == \
            [task.task_id for task in tasks]
        assert report.counts() == {"ok": len(tasks)}

    def test_parallel_batch_same_rows_as_serial(self):
        tasks = build_matrix(["eta"], ["mcfa", "zero"], [0, 1])
        serial = run_batch(tasks, serial=True)
        parallel = run_batch(tasks, jobs=2)
        # The fixpoint (configs, store sizes, inlinings) is
        # deterministic; drop per-process measurements (pid, timings)
        # and `steps`, whose worklist order shifts with each worker's
        # hash seed.
        volatile = ("pid", "wall_seconds", "elapsed", "steps")
        strip = lambda row: {key: value for key, value in row.items()
                             if key not in volatile}
        assert [strip(row) for row in serial.rows] == \
            [strip(row) for row in parallel.rows]

    def test_report_round_trips_through_json(self, tmp_path):
        tasks = [BenchTask("eta", "zero", 0)]
        report = run_batch(tasks, serial=True)
        path = report.write(str(tmp_path / "BENCH_test.json"))
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["rows"][0]["task"] == "eta:zero(0)"
        assert data["cpu_count"] >= 1
        assert data["rows"][0]["status"] == "ok"

    def test_progress_streams_once_per_task(self):
        tasks = build_matrix(["eta"], ["mcfa"], [0, 1])
        lines = []
        run_batch(tasks, serial=True, progress=lines.append)
        assert len(lines) == len(tasks)
        assert lines[0].startswith("[1/2] ")
