"""Tests for lowering surface Scheme to the core AST."""

import pytest

from repro.errors import DesugarError
from repro.scheme.ast import (
    App, If, Lam, Let, Letrec, PrimApp, Quote, Var,
)
from repro.scheme.desugar import desugar_expression, desugar_program


def test_number_literal():
    assert desugar_expression("42") == Quote(42)


def test_boolean_literal():
    assert desugar_expression("#f") == Quote(False)


def test_string_literal():
    assert desugar_expression('"hi"') == Quote("hi")


def test_variable_free_reference():
    exp = desugar_expression("unbound-name")
    assert isinstance(exp, Var)
    assert exp.name == "unbound-name"


class TestLambda:
    def test_simple(self):
        exp = desugar_expression("(lambda (x) x)")
        assert isinstance(exp, Lam)
        assert exp.params == ("x",)
        assert exp.body == Var("x")

    def test_multi_body_sequences(self):
        exp = desugar_expression("(lambda (x) (+ x 1) x)")
        assert isinstance(exp, Lam)
        assert isinstance(exp.body, Let)  # sequencing via let

    def test_duplicate_params_rejected(self):
        with pytest.raises(DesugarError):
            desugar_expression("(lambda (x x) x)")

    def test_empty_body_rejected(self):
        with pytest.raises(DesugarError):
            desugar_expression("(lambda (x))")

    def test_non_symbol_params_rejected(self):
        with pytest.raises(DesugarError):
            desugar_expression("(lambda (1) 1)")


class TestIf:
    def test_two_armed(self):
        exp = desugar_expression("(if #t 1 2)")
        assert exp == If(Quote(True), Quote(1), Quote(2))

    def test_one_armed_gets_void(self):
        exp = desugar_expression("(if #t 1)")
        assert isinstance(exp, If)
        assert exp.orelse == PrimApp("void", ())

    def test_bad_arity(self):
        with pytest.raises(DesugarError):
            desugar_expression("(if #t)")


class TestLet:
    def test_single_binding(self):
        exp = desugar_expression("(let ((x 1)) x)")
        # one temp + one rebinding
        assert isinstance(exp, Let)

    def test_parallel_semantics(self):
        # y must see the OUTER x, not the one bound in the same let.
        from repro.scheme.interp import run_source
        assert run_source(
            "(let ((x 1)) (let ((x 2) (y x)) (+ x (* 10 y))))") == 12

    def test_let_star_sequential(self):
        from repro.scheme.interp import run_source
        assert run_source(
            "(let ((x 1)) (let* ((x 2) (y x)) (+ x (* 10 y))))") == 22

    def test_named_let_loops(self):
        from repro.scheme.interp import run_source
        source = """
        (let loop ((i 0) (acc 0))
          (if (= i 5) acc (loop (+ i 1) (+ acc i))))
        """
        assert run_source(source) == 10

    def test_duplicate_bindings_rejected(self):
        with pytest.raises(DesugarError):
            desugar_expression("(let ((x 1) (x 2)) x)")

    def test_malformed_binding_rejected(self):
        with pytest.raises(DesugarError):
            desugar_expression("(let ((x)) x)")


class TestLetrec:
    def test_simple(self):
        exp = desugar_expression(
            "(letrec ((f (lambda (n) (f n)))) f)")
        assert isinstance(exp, Letrec)
        assert exp.bindings[0][0] == "f"

    def test_mutual(self):
        exp = desugar_expression("""
            (letrec ((even (lambda (n) (if (= n 0) #t (odd (- n 1)))))
                     (odd (lambda (n) (if (= n 0) #f (even (- n 1))))))
              (even 4))
        """)
        assert isinstance(exp, Letrec)
        assert len(exp.bindings) == 2

    def test_non_lambda_rhs_rejected(self):
        with pytest.raises(DesugarError):
            desugar_expression("(letrec ((x 1)) x)")


class TestCond:
    def test_basic(self):
        from repro.scheme.interp import run_source
        source = """
        (define (classify n)
          (cond ((< n 0) 'neg) ((= n 0) 'zero) (else 'pos)))
        (cons (classify -1) (cons (classify 0) (classify 3)))
        """
        from repro.scheme.values import PairVal
        result = run_source(source)
        assert isinstance(result, PairVal)
        assert str(result.car) == "neg"

    def test_empty_cond_is_void(self):
        exp = desugar_expression("(cond)")
        assert exp == PrimApp("void", ())

    def test_test_only_clause(self):
        from repro.scheme.interp import run_source
        assert run_source("(cond (#f) (42))") == 42

    def test_arrow_clause(self):
        from repro.scheme.interp import run_source
        assert run_source(
            "(cond ((+ 1 2) => (lambda (v) (* v 10))) (else 0))") == 30

    def test_else_must_be_last(self):
        with pytest.raises(DesugarError):
            desugar_expression("(cond (else 1) (#t 2))")


class TestAndOr:
    def test_and_empty(self):
        assert desugar_expression("(and)") == Quote(True)

    def test_or_empty(self):
        assert desugar_expression("(or)") == Quote(False)

    def test_and_shortcircuit(self):
        from repro.scheme.interp import run_source
        assert run_source("(and 1 2 3)") == 3
        assert run_source("(and #f (error 'boom))") is False

    def test_or_returns_first_truthy(self):
        from repro.scheme.interp import run_source
        assert run_source("(or #f 7 (error 'boom))") == 7


class TestWhenUnless:
    def test_when_true(self):
        from repro.scheme.interp import run_source
        assert run_source("(when (= 1 1) 1 2 3)") == 3

    def test_unless_false(self):
        from repro.scheme.interp import run_source
        assert run_source("(unless (= 1 2) 9)") == 9


class TestBegin:
    def test_begin_sequences(self):
        from repro.scheme.interp import run_source
        assert run_source("(begin 1 2 3)") == 3

    def test_empty_begin_is_void(self):
        exp = desugar_expression("(begin)")
        assert exp == PrimApp("void", ())


class TestDefines:
    def test_function_define_sugar(self):
        exp = desugar_program("(define (f x) x) (f 1)")
        assert isinstance(exp, Letrec)

    def test_value_define(self):
        exp = desugar_program("(define x 10) x")
        assert isinstance(exp, Let)
        assert exp.name == "x"

    def test_mutual_recursion_grouping(self):
        from repro.scheme.interp import run_source
        source = """
        (define (even? n) (if (= n 0) #t (odd? (- n 1))))
        (define (odd? n) (if (= n 0) #f (even? (- n 1))))
        (odd? 9)
        """
        assert run_source(source) is True

    def test_later_define_visible_earlier(self):
        # letrec* semantics: a defined name shadows primitives in the
        # whole body, even before its textual definition.
        from repro.scheme.interp import run_source
        source = """
        (define (use) (car 1 2))
        (define (car a b) (+ a b))
        (use)
        """
        assert run_source(source) == 3

    def test_trailing_define_yields_void(self):
        from repro.scheme.values import VoidType
        from repro.scheme.interp import run_source
        assert isinstance(run_source("(define (f) 1)"), VoidType)

    def test_internal_define(self):
        from repro.scheme.interp import run_source
        source = """
        (define (outer x)
          (define (inner y) (* y y))
          (inner (+ x 1)))
        (outer 3)
        """
        assert run_source(source) == 16

    def test_define_in_expression_position_rejected(self):
        with pytest.raises(DesugarError):
            desugar_expression("(+ 1 (define x 2))")


class TestPrimitives:
    def test_known_primitive_becomes_primapp(self):
        exp = desugar_expression("(+ 1 2)")
        assert exp == PrimApp("+", (Quote(1), Quote(2)))

    def test_shadowed_primitive_is_var(self):
        exp = desugar_expression("(lambda (car) (car 1))")
        assert isinstance(exp.body, App)
        assert exp.body.fn == Var("car")

    def test_primitive_as_value_eta_expands(self):
        exp = desugar_expression("car")
        assert isinstance(exp, Lam)
        assert exp.body.op == "car"

    def test_variadic_primitive_eta_expands_binary(self):
        exp = desugar_expression("+")
        assert isinstance(exp, Lam)
        assert len(exp.params) == 2

    def test_arity_checked_at_desugar_time(self):
        with pytest.raises(DesugarError):
            desugar_expression("(cons 1)")

    def test_list_expands_to_cons_chain(self):
        exp = desugar_expression("(list 1 2)")
        assert isinstance(exp, PrimApp)
        assert exp.op == "cons"
        assert isinstance(exp.args[1], PrimApp)
        assert exp.args[1].op == "cons"

    def test_empty_list_expansion(self):
        exp = desugar_expression("(list)")
        assert isinstance(exp, Quote)

    def test_cxr_expansion(self):
        exp = desugar_expression("(cadr xs)")
        assert exp.op == "car"
        assert exp.args[0].op == "cdr"

    def test_cadddr_expansion(self):
        from repro.scheme.interp import run_source
        assert run_source("(cadddr (list 1 2 3 4 5))") == 4

    def test_shadowed_list_is_application(self):
        exp = desugar_expression("(lambda (list) (list 1))")
        assert isinstance(exp.body, App)


class TestErrors:
    def test_empty_application(self):
        with pytest.raises(DesugarError):
            desugar_expression("()")

    def test_empty_program(self):
        with pytest.raises(DesugarError):
            desugar_program("")

    def test_special_form_as_value(self):
        with pytest.raises(DesugarError):
            desugar_expression("(cons lambda 1)")

    def test_quote_arity(self):
        with pytest.raises(DesugarError):
            desugar_expression("(quote)")
