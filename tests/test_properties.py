"""Property-based tests (hypothesis) over randomly generated,
well-typed, terminating programs.

These are the strongest correctness checks in the repository:

* differential testing — three evaluators, one answer;
* α-containment soundness for every analysis at several k/m;
* the [m=0] ≡ [k=0] theorem (§5.3) as an executable property;
* structural invariants of the front end.
"""

import pytest
from hypothesis import HealthCheck, given, settings
import hypothesis.strategies as st

from repro.analysis import (
    analyze_kcfa, analyze_mcfa, analyze_poly_kcfa, analyze_zerocfa,
)
from repro.analysis.abstraction import (
    check_flat_soundness, check_kcfa_soundness,
)
from repro.concrete import run_flat, run_shared
from repro.generators.random_programs import (
    random_core_expression, random_program,
)
from repro.scheme.alpha import alpha_rename, check_unique_binders
from repro.scheme.freevars import free_vars
from repro.scheme.interp import evaluate
from repro.scheme.values import values_equal

SETTINGS = settings(
    max_examples=60, deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.filter_too_much])

seeds = st.integers(min_value=0, max_value=2 ** 32 - 1)
depths = st.integers(min_value=1, max_value=5)


class TestGeneratorInvariants:
    @given(seed=seeds, depth=depths)
    @SETTINGS
    def test_generated_programs_closed(self, seed, depth):
        exp = random_core_expression(seed, depth)
        assert not free_vars(exp)

    @given(seed=seeds, depth=depths)
    @SETTINGS
    def test_alpha_renaming_gives_unique_binders(self, seed, depth):
        exp = alpha_rename(random_core_expression(seed, depth))
        check_unique_binders(exp)

    @given(seed=seeds, depth=depths)
    @SETTINGS
    def test_generated_programs_terminate(self, seed, depth):
        value = evaluate(
            alpha_rename(random_core_expression(seed, depth)),
            fuel=200_000)
        assert value is not None


class TestDifferential:
    @given(seed=seeds, depth=depths)
    @SETTINGS
    def test_three_evaluators_agree(self, seed, depth):
        exp = alpha_rename(random_core_expression(seed, depth))
        direct = evaluate(exp)
        program = random_program(seed, depth)
        shared = run_shared(program).value
        flat = run_flat(program).value
        assert values_equal(direct, shared)
        assert values_equal(shared, flat)

    @given(seed=seeds, depth=depths)
    @SETTINGS
    def test_flat_policies_agree_on_value(self, seed, depth):
        program = random_program(seed, depth)
        stack = run_flat(program, env_policy="stack").value
        history = run_flat(program, env_policy="history").value
        assert values_equal(stack, history)


class TestSoundnessProperties:
    @given(seed=seeds, depth=depths, k=st.integers(0, 2))
    @SETTINGS
    def test_kcfa_alpha_containment(self, seed, depth, k):
        program = random_program(seed, depth)
        concrete = run_shared(program, record_trace=True,
                              time_mode="history")
        report = check_kcfa_soundness(analyze_kcfa(program, k),
                                      concrete)
        assert report, report.violations[:3]

    @given(seed=seeds, depth=depths, m=st.integers(0, 2))
    @SETTINGS
    def test_mcfa_alpha_containment(self, seed, depth, m):
        program = random_program(seed, depth)
        concrete = run_flat(program, record_trace=True,
                            env_policy="stack")
        report = check_flat_soundness(analyze_mcfa(program, m),
                                      concrete)
        assert report, report.violations[:3]

    @given(seed=seeds, depth=depths, k=st.integers(0, 2))
    @SETTINGS
    def test_poly_kcfa_alpha_containment(self, seed, depth, k):
        program = random_program(seed, depth)
        concrete = run_flat(program, record_trace=True,
                            env_policy="history")
        report = check_flat_soundness(analyze_poly_kcfa(program, k),
                                      concrete)
        assert report, report.violations[:3]


class TestHierarchyProperties:
    @given(seed=seeds, depth=depths)
    @SETTINGS
    def test_m0_equals_k0(self, seed, depth):
        """§5.3: [m = 0]CFA and [k = 0]CFA are the same analysis."""
        program = random_program(seed, depth)
        m0 = analyze_mcfa(program, 0)
        k0 = analyze_kcfa(program, 0)
        assert m0.halt_values == k0.halt_values
        m0_callees = {label: frozenset(lam.label for lam in lams)
                      for label, lams in m0.callees.items()}
        k0_callees = {label: frozenset(lam.label for lam in lams)
                      for label, lams in k0.callees.items()}
        assert m0_callees == k0_callees

    @given(seed=seeds, depth=depths)
    @SETTINGS
    def test_all_zero_variants_agree(self, seed, depth):
        program = random_program(seed, depth)
        zero = analyze_zerocfa(program)
        poly0 = analyze_poly_kcfa(program, 0)
        assert zero.halt_values == poly0.halt_values

    @given(seed=seeds, depth=depths)
    @SETTINGS
    def test_analyses_deterministic(self, seed, depth):
        program = random_program(seed, depth)
        first = analyze_mcfa(program, 1)
        second = analyze_mcfa(program, 1)
        assert first.halt_values == second.halt_values
        assert first.config_count == second.config_count
        assert first.steps == second.steps

    @given(seed=seeds, depth=depths)
    @SETTINGS
    def test_halt_values_nonempty_for_terminating(self, seed, depth):
        # a terminating concrete run implies a nonempty abstract halt
        # flow (the abstract must cover the concrete result)
        program = random_program(seed, depth)
        for result in (analyze_kcfa(program, 1),
                       analyze_mcfa(program, 1)):
            assert result.halt_values


class TestStoreProperties:
    @given(seed=seeds, depth=depths)
    @SETTINGS
    def test_flow_sets_monotone_in_k(self, seed, depth):
        """Lower k merges more: every k=1 callee set is contained in
        the k=0 callee set at the same site."""
        program = random_program(seed, depth)
        k0 = analyze_kcfa(program, 0)
        k1 = analyze_kcfa(program, 1)
        for label, callees in k1.callees.items():
            merged = k0.callees.get(label, frozenset())
            assert {lam.label for lam in callees} <= \
                {lam.label for lam in merged}
