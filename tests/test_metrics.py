"""Tests for the metrics package: precision, complexity, timing."""

import pytest

from repro.analysis import (
    analyze_kcfa, analyze_mcfa, analyze_poly_kcfa, analyze_zerocfa,
)
from repro.errors import AnalysisTimeout
from repro.metrics.complexity import (
    bits, fj_poly_lattice_bits, growth_table, kcfa_benv_count,
    kcfa_lattice_height, kcfa_naive_state_space, kcfa_time_count,
    mcfa_lattice_height,
)
from repro.metrics.precision import (
    average_flow_size, flow_comparison, precision_row,
    standard_analyses,
)
from repro.metrics.timing import (
    TimingCell, format_cell, format_table, timed_cell,
)
from repro.scheme.cps_transform import compile_program
from repro.util.budget import Budget


class TestFlowComparison:
    SOURCE = """
    (define (noise) 0)
    (define (pick f) (noise) f)
    (cons ((pick (lambda (a) a)) 1) ((pick (lambda (b) b)) 2))
    """

    def test_k1_strictly_better_than_k0(self):
        program = compile_program(self.SOURCE)
        k1 = analyze_kcfa(program, 1)
        k0 = analyze_zerocfa(program)
        comparison = flow_comparison(k1, k0)
        assert comparison.left_at_least_as_precise
        assert comparison.left_strictly_better > 0

    def test_equal_results_compare_equal(self):
        program = compile_program("(+ 1 2)")
        one = analyze_mcfa(program, 1)
        two = analyze_mcfa(program, 1)
        assert flow_comparison(one, two).equal

    def test_m1_vs_poly1_on_intervening_call(self):
        program = compile_program(self.SOURCE)
        m1 = analyze_mcfa(program, 1)
        poly = analyze_poly_kcfa(program, 1)
        comparison = flow_comparison(m1, poly)
        assert comparison.left_at_least_as_precise
        assert not comparison.right_at_least_as_precise

    def test_average_flow_size(self):
        program = compile_program(self.SOURCE)
        k1 = analyze_kcfa(program, 1)
        k0 = analyze_zerocfa(program)
        assert average_flow_size(k0) >= average_flow_size(k1) > 0


class TestComplexityFormulas:
    def test_time_count(self):
        program = compile_program("((lambda (x) x) 1)")
        calls = program.stats()["calls"]
        assert kcfa_time_count(program, 2) == calls ** 2
        assert kcfa_time_count(program, 0) == 1

    def test_benv_count_dominates(self):
        program = compile_program("((lambda (x y) x) 1 2)")
        assert kcfa_benv_count(program, 1) > \
            kcfa_time_count(program, 1)

    def test_heights_ordered(self):
        program = compile_program(
            "((lambda (a b c) (+ a b c)) 1 2 3)")
        assert mcfa_lattice_height(program, 1) < \
            kcfa_lattice_height(program, 1) < \
            kcfa_naive_state_space(program, 1)

    def test_bits_of_small_numbers(self):
        assert bits(1) == 1
        assert bits(0) == 1
        assert bits(255) == 8

    def test_growth_table_rows(self):
        from repro.generators.worstcase import worst_case_program
        programs = [worst_case_program(d) for d in (2, 3)]
        rows = growth_table(programs, 1)
        assert len(rows) == 2
        assert rows[1]["kcfa_height_bits"] > rows[0]["kcfa_height_bits"]

    def test_fj_poly_bits_polynomial(self):
        from repro.fj import parse_fj
        from repro.generators.worstcase import worst_case_fj_source
        small = parse_fj(worst_case_fj_source(2), entry_method="run")
        large = parse_fj(worst_case_fj_source(8), entry_method="run")
        # polynomial: bits grow logarithmically-ish, far from 4x
        assert bits(fj_poly_lattice_bits(large, 1)) < \
            4 * bits(fj_poly_lattice_bits(small, 1))


class TestTiming:
    def test_timed_cell_success(self):
        program = compile_program("(+ 1 2)")
        cell = timed_cell(
            lambda budget: analyze_mcfa(program, 1, budget), 10.0)
        assert not cell.timed_out
        assert cell.payload.halt_values

    def test_timed_cell_timeout(self):
        from repro.generators.worstcase import worst_case_program
        program = worst_case_program(16)

        def analyze(budget):
            budget.max_steps = 100  # fail fast for the test
            return analyze_kcfa(program, 1, budget)

        cell = timed_cell(analyze, 60.0)
        assert cell.timed_out

    def test_format_cell(self):
        assert format_cell(TimingCell(0.2, False)) == "ϵ"
        assert format_cell(TimingCell(4.26, False)) == "4.3 s"
        assert format_cell(TimingCell(75.0, False)) == "1 m 15 s"
        assert format_cell(TimingCell(10.0, True)) == "∞"

    def test_format_table_aligns(self):
        table = format_table(["a", "bb"], [["x", "y"], ["zz", "w"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2


class TestPrecisionRow:
    def test_row_runs_all_four(self):
        program = compile_program("(define (f x) x) (f 1)")
        row = precision_row(program, standard_analyses(), timeout=20)
        assert set(row) == {"k=1", "m=1", "poly,k=1", "k=0"}
        for cell in row.values():
            assert cell.inlinings is not None

    def test_inlinings_none_on_timeout(self):
        from repro.generators.worstcase import worst_case_program
        program = worst_case_program(16)
        analyses = {
            "k=1": lambda p, budget: analyze_kcfa(
                p, 1, Budget(max_steps=100)),
        }
        row = precision_row(program, analyses, timeout=60)
        assert row["k=1"].inlinings is None


class TestBudget:
    def test_unlimited_budget_never_raises(self):
        budget = Budget().start()
        for _ in range(10_000):
            budget.charge()

    def test_step_budget(self):
        budget = Budget(max_steps=10).start()
        with pytest.raises(AnalysisTimeout):
            for _ in range(100):
                budget.charge()

    def test_time_budget(self):
        import time
        budget = Budget(max_seconds=0.01, check_every=1).start()
        time.sleep(0.05)
        with pytest.raises(AnalysisTimeout):
            for _ in range(10):
                budget.charge()

    def test_exhausted_nonraising(self):
        budget = Budget(max_steps=1).start()
        budget.charge()
        assert budget.exhausted()
