"""CLI coverage: thin analyze paths and the serve/submit commands.

The ``zero`` and ``poly`` analyses previously reached ``main`` only
through the parametrized smoke test; here their end-to-end output is
pinned down.  The serve/submit half drives a real server — started
through ``main(["serve", ...])`` in a thread, discovered via
``--ready-file`` — with the ``submit`` CLI, including the cache-hit
resubmission, stats, error paths and clean shutdown.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time

import pytest

from repro.__main__ import main
from repro.generators.worstcase import worst_case_source

SOURCE = "(define (id x) x)\n(+ (id 3) (id 4))\n"


def _write(tmp_path, text: str = SOURCE) -> str:
    path = tmp_path / "prog.scm"
    path.write_text(text, encoding="utf-8")
    return str(path)


class TestThinAnalyzePaths:
    def test_zero_end_to_end(self, tmp_path, capsys):
        assert main(["analyze", _write(tmp_path),
                     "--analysis", "zero"]) == 0
        out = capsys.readouterr().out
        assert "flow facts — 0CFA(0)" in out
        assert "supported inlinings" in out
        assert "environments per lambda" in out

    def test_poly_end_to_end(self, tmp_path, capsys):
        assert main(["analyze", _write(tmp_path),
                     "--analysis", "poly", "-n", "1"]) == 0
        out = capsys.readouterr().out
        assert "flow facts — poly-k-CFA(1)" in out
        assert "supported inlinings" in out

    def test_zero_report_selection(self, tmp_path, capsys):
        assert main(["analyze", _write(tmp_path), "--analysis",
                     "zero", "--report", "flow"]) == 0
        out = capsys.readouterr().out
        assert "flow facts" in out
        assert "call-site resolution" not in out

    @pytest.mark.parametrize("analysis", ["zero", "poly"])
    def test_values_plain_matches_interned(self, analysis, tmp_path,
                                           capsys):
        path = _write(tmp_path)
        assert main(["analyze", path, "--analysis", analysis,
                     "--values", "interned"]) == 0
        interned = capsys.readouterr().out
        assert main(["analyze", path, "--analysis", analysis,
                     "--values", "plain"]) == 0
        assert capsys.readouterr().out == interned

    def test_timeout_surfaces_as_error(self, tmp_path, capsys):
        path = _write(tmp_path, worst_case_source(14))
        assert main(["analyze", path, "--analysis", "kcfa", "-n",
                     "2", "--timeout", "0.2"]) == 1
        assert "time budget" in capsys.readouterr().err


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """A real server behind ``main(["serve", ...])`` in a thread."""
    base = tmp_path_factory.mktemp("serve")
    ready = base / "endpoint"
    state: dict[str, int] = {}

    def run():
        state["code"] = main(
            ["serve", "--port", "0", "--workers", "1",
             "--cache-dir", str(base / "cache"),
             "--job-timeout", "60",
             "--ready-file", str(ready)])

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    deadline = time.monotonic() + 30
    while not ready.exists() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert ready.exists(), "server never wrote its ready file"
    host, port = ready.read_text(encoding="utf-8") \
        .strip().rsplit(":", 1)
    yield {"host": host, "port": port, "thread": thread,
           "state": state}
    if thread.is_alive():
        main(["submit", "--host", host, "--port", port,
              "--shutdown"])
        thread.join(timeout=30)


class TestSessionCLI:
    """submit --session / edit / query end to end through main().

    Runs before :class:`TestServeSubmitCLI`, whose final test shuts
    the module's server down.
    """

    def _connection(self, served):
        return ["--host", served["host"], "--port", served["port"]]

    def _open_session(self, served, tmp_path, capsys) -> str:
        path = _write(tmp_path)
        assert main(["submit", path, "--session", "--analysis",
                     "kcfa", "-n", "1",
                     *self._connection(served)]) == 0
        err = capsys.readouterr().err
        line = next(l for l in err.splitlines()
                    if l.startswith("session "))
        return line.split()[1]

    def test_session_edit_query_roundtrip(self, served, tmp_path,
                                          capsys):
        session = self._open_session(served, tmp_path, capsys)
        assert session.startswith("s")

        edited = _write(tmp_path, SOURCE.replace("(id 4)", "(id 5)"))
        assert main(["edit", session, edited,
                     *self._connection(served)]) == 0
        first = capsys.readouterr()
        assert "(id 5)" not in first.out  # reports, not source
        assert f"session {session}:" in first.err

        # The second edit must resume warm from the first's store.
        edited2 = _write(tmp_path,
                         SOURCE.replace("(id 4)", "(id 6)"))
        assert main(["edit", session, edited2,
                     *self._connection(served)]) == 0
        second = capsys.readouterr()
        assert f"session {session}: resumed" in second.err
        assert "addresses cleared" in second.err

        assert main(["query", session, "value-of", "x",
                     *self._connection(served)]) == 0
        answer = capsys.readouterr().out
        assert "value-of x" in answer
        assert "3" in answer and "6" in answer

        assert main(["submit", "--server-stats",
                     *self._connection(served)]) == 0
        stats = capsys.readouterr().out
        assert "sessions:" in stats
        assert "warm-resumed" in stats

    def test_edit_unknown_session_fails(self, served, tmp_path,
                                        capsys):
        path = _write(tmp_path)
        assert main(["edit", "s313373", path,
                     *self._connection(served)]) == 1
        assert "unknown session" in capsys.readouterr().err

    def test_query_unknown_session_fails(self, served, capsys):
        assert main(["query", "s313373", "value-of", "x",
                     *self._connection(served)]) == 1
        assert "unknown session" in capsys.readouterr().err


class TestServeSubmitCLI:
    def _submit_args(self, served, *extra):
        return ["submit", *extra, "--host", served["host"],
                "--port", served["port"]]

    def test_submit_matches_analyze(self, served, tmp_path, capsys):
        path = _write(tmp_path)
        assert main(["analyze", path, "--analysis", "mcfa",
                     "-n", "1"]) == 0
        expected = capsys.readouterr().out
        assert main(self._submit_args(
            served, path, "--analysis", "mcfa", "-n", "1")) == 0
        captured = capsys.readouterr()
        assert captured.out == expected
        assert "queued" in captured.err
        assert "running" in captured.err

    def test_resubmission_hits_cache(self, served, tmp_path, capsys):
        path = _write(tmp_path)
        args = self._submit_args(
            served, path, "--analysis", "kcfa", "-n", "1", "--quiet")
        assert main(args) == 0
        first = capsys.readouterr()
        assert "(cached result)" not in first.err
        assert main(args) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "(cached result)" in second.err

    def test_server_stats(self, served, capsys):
        assert main(self._submit_args(served, "--server-stats")) == 0
        out = capsys.readouterr().out
        assert "analysis service" in out
        assert "jobs:" in out
        assert "cache:" in out

    def test_submit_requires_a_file(self, served, capsys):
        assert main(self._submit_args(served)) == 2
        assert "needs a file" in capsys.readouterr().err

    def test_bad_program_is_a_job_error(self, served, tmp_path,
                                        capsys):
        path = _write(tmp_path, "(lambda (x)")
        assert main(self._submit_args(served, path, "--quiet")) == 1
        assert "error" in capsys.readouterr().err

    def test_client_endpoint_parsing(self, served):
        from repro.service.client import ServiceClient
        endpoint = f"{served['host']}:{served['port']}"
        with ServiceClient.connect(endpoint) as client:
            assert client.ping()["event"] == "pong"

    # Keep last in the class: stops the module's server.
    def test_shutdown_stops_the_server(self, served, capsys):
        assert main(self._submit_args(served, "--shutdown")) == 0
        assert "shutting down" in capsys.readouterr().err
        served["thread"].join(timeout=30)
        assert not served["thread"].is_alive()
        assert served["state"]["code"] == 0


class TestSubmitWithoutServer:
    def test_unreachable_server(self, tmp_path, capsys):
        path = _write(tmp_path)
        assert main(["submit", path, "--host", "127.0.0.1",
                     "--port", "1"]) == 1
        assert "cannot reach server" in capsys.readouterr().err


class TestUnixSocket:
    def test_unix_socket_roundtrip(self):
        from repro.service.client import ServiceClient
        from repro.service.server import AnalysisServer
        # A short path: AF_UNIX caps sun_path around 107 bytes, and
        # pytest tmp dirs can blow past that.
        base = tempfile.mkdtemp(prefix="repro-svc-")
        socket_path = os.path.join(base, "repro.sock")
        server = AnalysisServer(socket_path=socket_path,
                                workers=1).start()
        try:
            assert server.endpoint == socket_path
            with ServiceClient(socket_path=socket_path) as client:
                assert client.ping()["protocol"] == 1
                final = client.submit(source=SOURCE, analysis="zero",
                                      context=0, timeout=60.0)
                assert final["status"] == "ok"
                assert "0CFA" in final["stdout"]
        finally:
            server.stop()
        assert not os.path.exists(socket_path)
        os.rmdir(base)
