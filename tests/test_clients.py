"""The client-analysis layer (``repro.analysis.clients``): pass
answers, DOT round-tripping, validation at every entry point, the
query-carrying job path, and the batch ≡ service identity guarantee.

The PR-8 session point queries were deduplicated onto this layer; the
``TestSessionByteIdentity`` class pins their answers byte-for-byte
against verbatim copies of the original implementations.
"""

import json
import re
import socket

import pytest

from repro.analysis.clients import (
    BATCH_KINDS, PASS_KINDS, SESSION_KINDS, TOPLEVEL, UNKNOWN,
    parse_label, run_result_query, validate_query,
)
from repro.analysis.incremental import AnalysisSession
from repro.analysis.registry import run_analysis
from repro.errors import UsageError
from repro.generators.fj_random import fj_random_program
from repro.scheme.cps_transform import compile_program
from repro.service.jobs import (
    JobSpec, cache_payload, job_cache_key, run_job,
)
from repro.service.protocol import (
    ProtocolError, query_job_spec, query_request,
)

SOURCE = """
(define (make-adder n) (lambda (x) (+ x n)))
(define (twice f v) (f (f v)))
(cons (twice (make-adder 1) 10) ((make-adder 2) 20))
"""

#: Returns a closure: exercises the halt-escape channel.
RETURNS_CLOSURE = "(define (mk n) (lambda (x) (+ x n))) (mk 1)"


@pytest.fixture(scope="module")
def scheme_result():
    return run_analysis("kcfa", compile_program(SOURCE), 1)


@pytest.fixture(scope="module")
def fj_result():
    return run_analysis("fj-kcfa", fj_random_program(3), 1,
                        language="fj")


# ---------------------------------------------------------------------------
# A hand-rolled DOT parser (no graphviz dependency): the acceptance
# criterion is that the export round-trips through a parser.
# ---------------------------------------------------------------------------

_NODE_RE = re.compile(r'^  "([^"]+)"( \[shape=box\])?;$')
_EDGE_RE = re.compile(r'^  "([^"]+)" -> "([^"]+)" \[label="(\d+)"\];$')


def parse_dot(dot: str):
    """Parse the pass's DOT dialect back into (nodes, boxes, edges)."""
    lines = dot.splitlines()
    assert lines[0] == "digraph callgraph {"
    assert lines[-1] == "}"
    assert dot.endswith("}\n")
    nodes, boxes, edges = [], set(), []
    for line in lines[1:-1]:
        edge = _EDGE_RE.match(line)
        if edge:
            edges.append({"source": edge.group(1),
                          "target": edge.group(2),
                          "call": int(edge.group(3))})
            continue
        node = _NODE_RE.match(line)
        assert node, f"unparseable DOT line: {line!r}"
        nodes.append(node.group(1))
        if node.group(2):
            boxes.add(node.group(1))
    return nodes, boxes, edges


def _wire_safe(answer: dict) -> None:
    """An answer must survive a JSON round trip unchanged (the batch ≡
    service byte-identity guarantee rules out sets and int keys)."""
    assert json.loads(json.dumps(answer)) == answer


# ---------------------------------------------------------------------------
# The passes
# ---------------------------------------------------------------------------

class TestCallGraphPass:
    def test_answer_shape(self, scheme_result):
        answer = run_result_query(scheme_result, "call-graph")
        assert answer["query"] == "call-graph"
        assert answer["language"] == "scheme"
        assert answer["analysis"] == scheme_result.analysis
        assert answer["known_sites"] + answer["unknown_sites"] \
            == len(answer["sites"])
        for site in answer["sites"]:
            assert site["lattice"] in ("Known", "Unknown")
            if site["lattice"] == "Known":
                assert site["targets"]
        _wire_safe(answer)

    def test_covers_every_known_call_site(self, scheme_result):
        answer = run_result_query(scheme_result, "call-graph")
        assert {site["site"] for site in answer["sites"]} \
            == set(scheme_result.callees) \
            | set(scheme_result.unknown_operator)

    def test_dot_round_trips(self, scheme_result):
        answer = run_result_query(scheme_result, "call-graph")
        nodes, boxes, edges = parse_dot(answer["dot"])
        assert nodes == answer["nodes"]
        assert edges == answer["edges"]
        assert boxes == {TOPLEVEL, UNKNOWN} & set(nodes)

    def test_edges_land_on_declared_nodes(self, scheme_result):
        answer = run_result_query(scheme_result, "call-graph")
        nodes = set(answer["nodes"])
        for edge in answer["edges"]:
            assert edge["source"] in nodes
            assert edge["target"] in nodes

    def test_toplevel_owns_the_root_call(self, scheme_result):
        answer = run_result_query(scheme_result, "call-graph")
        assert TOPLEVEL in answer["nodes"]

    def test_fj_call_graph(self, fj_result):
        answer = run_result_query(fj_result, "call-graph")
        assert answer["language"] == "fj"
        assert answer["unknown_sites"] == 0
        assert {site["site"] for site in answer["sites"]} \
            == set(fj_result.invoke_targets)
        for site in answer["sites"]:
            # FJ owners and targets are qualified method names.
            assert "." in site["owner"]
            assert all("." in target for target in site["targets"])
        nodes, boxes, edges = parse_dot(answer["dot"])
        assert nodes == answer["nodes"]
        assert edges == answer["edges"]
        assert boxes == set()
        _wire_safe(answer)


class TestEscapingPass:
    def test_halt_channel(self):
        result = run_analysis("kcfa",
                              compile_program(RETURNS_CLOSURE), 1)
        answer = run_result_query(result, "escaping")
        assert answer["to_halt"], answer
        _wire_safe(answer)

    def test_heap_channel(self, scheme_result):
        # SOURCE conses closure results, not closures, but make-adder's
        # inner lambda flows through twice; assert consistency either
        # way and pin the union/channel bookkeeping.
        answer = run_result_query(scheme_result, "escaping")
        union = set(answer["to_halt"]) | set(answer["to_heap"]) \
            | set(answer["to_unknown"])
        assert answer["escaping"] == sorted(union)
        for row in answer["lambdas"]:
            assert row["lam"] in union
            assert row["channels"]
            assert set(row["channels"]) <= {"halt", "heap",
                                            "unknown-call"}

    def test_closure_in_pair_escapes_to_heap(self):
        result = run_analysis("kcfa", compile_program(
            "(cons (lambda (x) x) 1)"), 1)
        answer = run_result_query(result, "escaping")
        assert answer["to_heap"], answer

    def test_total_lambdas_counts_the_program(self, scheme_result):
        answer = run_result_query(scheme_result, "escaping")
        assert answer["total_lambdas"] \
            == len(scheme_result.program.lams)
        assert len(answer["escaping"]) <= answer["total_lambdas"]


class TestMonoPass:
    def test_matches_result_api(self, scheme_result):
        answer = run_result_query(scheme_result, "mono")
        assert [site["site"] for site in answer["sites"]] \
            == scheme_result.monomorphic_call_sites()
        assert answer["count"] == len(answer["sites"])
        assert answer["count"] \
            == scheme_result.summary()["mono_sites"]
        assert answer["count"] <= answer["total_sites"]
        _wire_safe(answer)

    def test_targets_are_the_single_callee(self, scheme_result):
        answer = run_result_query(scheme_result, "mono")
        for site in answer["sites"]:
            (lam,) = scheme_result.callees[site["site"]]
            assert site["target"] == lam.label
            assert site["kind"] == ("user" if lam.is_user else "cont")

    def test_fj_mono(self, fj_result):
        answer = run_result_query(fj_result, "mono")
        assert [site["site"] for site in answer["sites"]] \
            == fj_result.monomorphic_call_sites()
        assert answer["count"] == fj_result.summary()["mono_sites"]
        for site in answer["sites"]:
            (target,) = fj_result.invoke_targets[site["site"]]
            assert site["target"] == target
        _wire_safe(answer)


class TestDevirtPass:
    def test_candidates_have_one_receiver_class(self, fj_result):
        answer = run_result_query(fj_result, "devirt")
        assert answer["language"] == "fj"
        assert answer["count"] == len(answer["candidates"])
        for candidate in answer["candidates"]:
            exp = fj_result.program.stmt_by_label[
                candidate["site"]].exp
            classes = {value.classname
                       for value in fj_result.points_to(exp.target)}
            assert classes == {candidate["receiver"]}
            assert candidate["method"] == exp.method
        _wire_safe(answer)

    def test_mono_sites_with_one_receiver_are_candidates(
            self, fj_result):
        mono = run_result_query(fj_result, "mono")
        devirt = {c["site"]: c
                  for c in run_result_query(
                      fj_result, "devirt")["candidates"]}
        for site in mono["sites"]:
            exp = fj_result.program.stmt_by_label[site["site"]].exp
            classes = {value.classname
                       for value in fj_result.points_to(exp.target)}
            if len(classes) == 1:
                assert site["site"] in devirt


class TestInliningPass:
    def test_matches_result_api(self, scheme_result):
        answer = run_result_query(scheme_result, "inlining")
        assert [site["site"] for site in answer["sites"]] \
            == scheme_result.inlinable_call_sites()
        assert answer["count"] == len(answer["sites"])
        _wire_safe(answer)

    def test_inlinable_sites_are_monomorphic_user_sites(
            self, scheme_result):
        mono = {site["site"]: site for site in
                run_result_query(scheme_result, "mono")["sites"]}
        answer = run_result_query(scheme_result, "inlining")
        for site in answer["sites"]:
            assert mono[site["site"]]["kind"] == "user"
            assert mono[site["site"]]["target"] == site["callee"]


class TestValueOfBatch:
    def test_value_of_rides_the_batch_path(self, scheme_result):
        answer = run_result_query(scheme_result, "value-of", "n")
        assert answer["query"] == "value-of"
        assert answer["values"], answer
        _wire_safe(answer)


# ---------------------------------------------------------------------------
# Validation — one gate, every entry point
# ---------------------------------------------------------------------------

class TestValidation:
    def test_kind_tables_are_consistent(self):
        assert set(PASS_KINDS) < set(BATCH_KINDS)
        assert "call-sites-of" in SESSION_KINDS
        assert "devirt" not in SESSION_KINDS

    @pytest.mark.parametrize("kind,target,kwargs,fragment", [
        ("nope", None, {}, "unknown query"),
        ("call-sites-of", "3", {}, "unknown query"),  # session-only
        ("devirt", None, {"language": "scheme"}, "not available"),
        ("escaping", None, {"language": "fj"}, "not available"),
        ("value-of", None, {}, "requires a target"),
        ("call-graph", "3", {}, "takes no target"),
        ("mono", "3", {"session": True}, "takes no target"),
        ("escaping", "3", {}, "takes no target in batch mode"),
        ("value-of", None, {"session": True}, "requires a target"),
    ])
    def test_usage_errors(self, kind, target, kwargs, fragment):
        with pytest.raises(UsageError, match=fragment):
            validate_query(kind, target, **kwargs)

    def test_session_escaping_keeps_its_target(self):
        validate_query("escaping", "3", session=True)  # no raise
        validate_query("escaping", None, session=True)

    def test_parse_label(self):
        assert parse_label("7") == 7
        with pytest.raises(UsageError,
                           match="not a lambda label"):
            parse_label("seven")

    def test_language_detected_from_the_result(self, scheme_result,
                                               fj_result):
        with pytest.raises(UsageError, match="not available"):
            run_result_query(scheme_result, "devirt")
        with pytest.raises(UsageError, match="not available"):
            run_result_query(fj_result, "inlining")


class TestProtocolValidation:
    SESSION_MSG = {"op": "query", "id": "q1", "session": "s1",
                   "kind": "value-of", "target": "n"}

    def test_session_query_parses(self):
        assert query_request(dict(self.SESSION_MSG)) \
            == ("s1", "value-of", "n")

    def test_batch_only_field_on_session_query(self):
        message = dict(self.SESSION_MSG, source="1")
        with pytest.raises(ProtocolError,
                           match="apply only to sessionless"):
            query_request(message)

    def test_unknown_field_rejected(self):
        message = dict(self.SESSION_MSG, frobnicate=True)
        with pytest.raises(ProtocolError,
                           match="unknown query field"):
            query_request(message)

    def test_bad_kind_is_a_protocol_error(self):
        message = dict(self.SESSION_MSG, kind="nope")
        with pytest.raises(ProtocolError, match="unknown query"):
            query_request(message)

    def test_batch_query_builds_a_spec(self):
        spec = query_job_spec({"op": "query", "id": "q1",
                               "kind": "call-graph",
                               "source": SOURCE,
                               "analysis": "kcfa", "context": 1})
        assert spec.query_kind == "call-graph"
        assert spec.query_target is None
        assert spec.analysis == "kcfa"

    def test_batch_query_needs_a_kind(self):
        with pytest.raises(ProtocolError, match="needs 'kind'"):
            query_job_spec({"op": "query", "id": "q1",
                            "source": SOURCE})

    def test_batch_language_mismatch(self):
        with pytest.raises(ProtocolError, match="not available"):
            query_job_spec({"op": "query", "id": "q1",
                            "kind": "devirt", "source": SOURCE})

    def test_batch_unknown_kind(self):
        with pytest.raises(ProtocolError, match="unknown query"):
            query_job_spec({"op": "query", "id": "q1",
                            "kind": "nope", "source": SOURCE})


class TestJobSpecQueryFields:
    def test_target_without_kind_is_meaningless(self):
        with pytest.raises(UsageError, match="meaningless"):
            JobSpec(source=SOURCE, query_target="n").validate()

    def test_query_kind_validates_against_the_language(self):
        with pytest.raises(UsageError, match="not available"):
            JobSpec(source=SOURCE, query_kind="devirt").validate()

    def test_target_requirement_enforced(self):
        with pytest.raises(UsageError, match="requires a target"):
            JobSpec(source=SOURCE, query_kind="value-of").validate()
        spec = JobSpec(source=SOURCE, query_kind="value-of",
                       query_target="n")
        assert spec.validate() is spec

    def test_cache_key_audited(self):
        plain = JobSpec(source=SOURCE, analysis="kcfa")
        query = JobSpec(source=SOURCE, analysis="kcfa",
                        query_kind="call-graph")
        assert job_cache_key(plain) != job_cache_key(query)
        # Different kinds and targets are distinct cache entries.
        assert job_cache_key(query) != job_cache_key(
            JobSpec(source=SOURCE, analysis="kcfa",
                    query_kind="mono"))
        assert job_cache_key(
            JobSpec(source=SOURCE, analysis="kcfa",
                    query_kind="value-of", query_target="n")) \
            != job_cache_key(
            JobSpec(source=SOURCE, analysis="kcfa",
                    query_kind="value-of", query_target="x"))

    def test_plain_keys_do_not_mention_queries(self):
        # A spec with defaulted query fields hashes identically to one
        # written before the fields existed: PR-10 must not invalidate
        # every pre-existing cache entry.
        explicit = JobSpec(source=SOURCE, analysis="kcfa",
                           query_kind=None, query_target=None)
        assert job_cache_key(explicit) \
            == job_cache_key(JobSpec(source=SOURCE, analysis="kcfa"))

    def test_run_job_carries_the_answer(self):
        spec = JobSpec(source=SOURCE, analysis="kcfa",
                       query_kind="call-graph").validate()
        row = run_job(spec)
        assert row["status"] == "ok"
        answer = row["answer"]
        assert answer == run_result_query(
            run_analysis("kcfa", compile_program(SOURCE), 1),
            "call-graph")
        assert row["stdout"] == json.dumps(
            answer, indent=2, sort_keys=True) + "\n"
        assert cache_payload(row)["answer"] == answer


# ---------------------------------------------------------------------------
# PR-8 byte identity: the deduplicated session queries answer exactly
# what the original in-session implementations answered.
# ---------------------------------------------------------------------------

def _ref_value_of(session, name):
    """The PR-8 ``AnalysisSession._value_of``, verbatim."""
    from repro.reporting import render_value
    values: set = set()
    variables: set = set()
    contexts = 0
    for (addr_name, _context), flow in session.store.items():
        if addr_name != name \
                and addr_name.split("%", 1)[0] != name:
            continue
        variables.add(addr_name)
        contexts += 1
        values |= flow
    return {"query": "value-of", "target": name,
            "variables": sorted(variables),
            "contexts": contexts,
            "values": sorted(render_value(v) for v in values)}


def _ref_lam_labels(session, mask):
    labels = set()
    for value in session.store.table.decode_iter(mask):
        lam = getattr(value, "lam", None)
        if lam is not None:
            labels.add(lam.label)
    return labels


def _ref_call_sites_of(session, label):
    """The PR-8 ``AnalysisSession._call_sites_of``, verbatim."""
    from repro.cps.syntax import AppCall
    sites = set()
    probed = 0
    for config in session.state.seen:
        call = config.call
        if not isinstance(call, AppCall):
            continue
        probed += 1
        mask = session.machine.evaluate(call.fn, config,
                                        session.store, set())
        if label in _ref_lam_labels(session, mask):
            sites.add(call.label)
    return {"query": "call-sites-of", "target": label,
            "sites": sorted(sites), "probed": probed}


def _ref_escaping(session, label):
    """The PR-8 ``AnalysisSession._escaping``, verbatim."""
    from repro.cps.syntax import HaltCall
    to_halt = set()
    for config in session.state.seen:
        call = config.call
        if isinstance(call, HaltCall):
            mask = session.machine.evaluate(call.arg, config,
                                            session.store, set())
            to_halt |= _ref_lam_labels(session, mask)
    to_heap = set()
    for (name, _context), flow in session.store.items():
        if "@" not in name:
            continue
        for value in flow:
            lam = getattr(value, "lam", None)
            if lam is not None:
                to_heap.add(lam.label)
    return {"query": "escaping", "target": label,
            "escaping": label in to_halt or label in to_heap,
            "to_halt": label in to_halt, "to_heap": label in to_heap}


@pytest.fixture(scope="module", params=["kcfa", "mcfa"])
def warm_session(request):
    return AnalysisSession(compile_program(SOURCE), request.param, 1)


class TestSessionByteIdentity:
    def test_value_of(self, warm_session):
        for name in ("n", "x", "f", "v", "no-such-var"):
            answer = warm_session.query("value-of", name)
            reference = _ref_value_of(warm_session, name)
            assert answer == reference
            assert json.dumps(answer, sort_keys=True) \
                == json.dumps(reference, sort_keys=True)

    def test_call_sites_of(self, warm_session):
        for lam in warm_session.program.lams:
            answer = warm_session.query("call-sites-of",
                                        str(lam.label))
            reference = _ref_call_sites_of(warm_session, lam.label)
            assert answer == reference
            assert json.dumps(answer, sort_keys=True) \
                == json.dumps(reference, sort_keys=True)

    def test_escaping_point(self, warm_session):
        for lam in warm_session.program.lams:
            answer = warm_session.query("escaping", str(lam.label))
            reference = _ref_escaping(warm_session, lam.label)
            assert answer == reference

    def test_unknown_kind_still_exits_two(self, warm_session):
        with pytest.raises(UsageError, match="unknown query"):
            warm_session.query("points-to", "n")

    def test_sessions_answer_the_new_passes(self, warm_session):
        for kind in ("call-graph", "mono", "inlining"):
            assert warm_session.query(kind) \
                == run_result_query(warm_session.result, kind)
        # No target: the session escaping query is the whole pass.
        assert warm_session.query("escaping") \
            == run_result_query(warm_session.result, "escaping")


# ---------------------------------------------------------------------------
# Batch ≡ service identity over a live server
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def clients_server(tmp_path_factory):
    from repro.cache import ResultCache
    from repro.service.server import AnalysisServer
    cache = ResultCache(tmp_path_factory.mktemp("clients-cache"))
    server = AnalysisServer(port=0, workers=1, cache=cache).start()
    yield server
    server.stop()


class TestServiceIdentity:
    def test_batch_and_service_answers_are_identical(
            self, clients_server):
        from repro.service.client import ServiceClient
        spec = JobSpec(source=SOURCE, analysis="kcfa",
                       query_kind="call-graph").validate()
        local = run_job(spec)
        with ServiceClient(port=clients_server.port) as client:
            event = client.query(kind="call-graph", source=SOURCE,
                                 analysis="kcfa")
            assert event["status"] == "ok"
            assert event["answer"] == local["answer"]
            assert json.dumps(event["answer"], sort_keys=True) \
                == json.dumps(local["answer"], sort_keys=True)
            # The cached rerun serves the same answer.
            again = client.query(kind="call-graph", source=SOURCE,
                                 analysis="kcfa")
            assert again["status"] == "ok"
            assert again["answer"] == local["answer"]
            assert again["cached"] is True

    def test_every_batch_kind_over_the_wire(self, clients_server):
        from repro.service.client import ServiceClient
        with ServiceClient(port=clients_server.port) as client:
            for kind in ("escaping", "mono", "inlining"):
                event = client.query(kind=kind, source=SOURCE,
                                     analysis="kcfa")
                assert event["status"] == "ok"
                assert event["answer"] == run_result_query(
                    run_analysis("kcfa",
                                 compile_program(SOURCE), 1),
                    kind)
            event = client.query(kind="value-of", target="n",
                                 source=SOURCE, analysis="kcfa")
            assert event["status"] == "ok"
            assert event["answer"]["query"] == "value-of"

    def test_service_rejects_bad_batch_queries(self, clients_server):
        from repro.service.client import ServiceClient
        with ServiceClient(port=clients_server.port) as client:
            event = client.query(kind="nope", source=SOURCE)
            assert event["event"] == "error"
            assert "unknown query" in event["error"]
            event = client.query(kind="value-of", source=SOURCE)
            assert event["event"] == "error"
            assert "requires a target" in event["error"]

    def test_session_query_on_the_service(self, clients_server):
        from repro.service.client import ServiceClient
        with ServiceClient(port=clients_server.port) as client:
            done = client.submit(source=SOURCE, analysis="kcfa",
                                 context=1, session=True)
            assert done["status"] == "ok"
            session_id = done["session"]
            event = client.query(session=session_id,
                                 kind="call-graph")
            assert event["status"] == "ok"
            assert event["answer"] == run_result_query(
                run_analysis("kcfa", compile_program(SOURCE), 1),
                "call-graph")
