"""Tests for k-CFA — both engines."""

import pytest

from repro.analysis import (
    AConst, BASIC, KClo, analyze_kcfa, analyze_kcfa_naive,
)
from repro.errors import AnalysisTimeout
from repro.scheme.cps_transform import compile_program
from repro.util.budget import Budget


def lambdas_flowing_to(result, stem):
    """Lambdas in the flow set of any variable whose stem matches."""
    from repro.util.gensym import GensymFactory
    lams = set()
    for (name, _ctx), values in result.store.items():
        if GensymFactory.base_of(name) == stem:
            lams |= {v.lam for v in values if isinstance(v, KClo)}
    return lams


class TestBasicFlow:
    def test_halt_value_constant(self):
        result = analyze_kcfa(compile_program("42"), 1)
        assert result.halt_values == {AConst(42)}

    def test_identity_application(self):
        result = analyze_kcfa(compile_program("((lambda (x) x) 9)"), 1)
        assert AConst(9) in result.halt_values

    def test_closure_flows_to_variable(self):
        program = compile_program(
            "(let ((f (lambda (x) x))) (f 1))")
        result = analyze_kcfa(program, 1)
        assert len(lambdas_flowing_to(result, "f")) == 1

    def test_prim_result_is_basic(self):
        result = analyze_kcfa(compile_program("(+ 1 2)"), 1)
        assert result.halt_values == {BASIC}

    def test_unreachable_branch_not_analyzed(self):
        # Literal test: only the then branch should run.
        result = analyze_kcfa(compile_program("(if #t 1 2)"), 1)
        assert result.halt_values == {AConst(1)}

    def test_unknown_test_branches_both(self):
        result = analyze_kcfa(compile_program("(if (= 1 1) 1 2)"), 1)
        assert result.halt_values == {AConst(1), AConst(2)}


class TestContextSensitivity:
    POLY_SOURCE = """
    (define (id x) x)
    (cons (id (lambda (a) a)) (id (lambda (b) b)))
    """

    def test_k1_separates_contexts(self):
        result = analyze_kcfa(compile_program(self.POLY_SOURCE), 1)
        # under k=1 each call of id binds x in its own context:
        # per-address flow sets stay singletons.
        x_addrs = [(name, ctx) for (name, ctx) in
                   result.store.addresses()
                   if name.startswith("x")]
        assert len(x_addrs) == 2
        for addr in x_addrs:
            assert len(result.store.get(addr)) == 1

    def test_k0_merges_contexts(self):
        result = analyze_kcfa(compile_program(self.POLY_SOURCE), 0)
        x_addrs = [(name, ctx) for (name, ctx) in
                   result.store.addresses()
                   if name.startswith("x")]
        assert len(x_addrs) == 1
        assert len(result.store.get(x_addrs[0])) == 2

    def test_k2_refines_k1(self):
        source = """
        (define (wrap f) (lambda (v) (f v)))
        (define (id x) x)
        (cons ((wrap id) 1) ((wrap id) 2))
        """
        program = compile_program(source)
        k1 = analyze_kcfa(program, 1)
        k2 = analyze_kcfa(program, 2)
        assert k2.config_count >= k1.config_count

    def test_supported_inlinings_monotone_in_k(self):
        program = compile_program("""
            (define (noise) 0)
            (define (pick f) (noise) f)
            (cons ((pick (lambda (a) a)) 1)
                  ((pick (lambda (b) b)) 2))
        """)
        k0 = analyze_kcfa(program, 0).supported_inlinings()
        k1 = analyze_kcfa(program, 1).supported_inlinings()
        assert k1 > k0


class TestPairsFieldSensitivity:
    def test_closure_through_cons(self):
        source = """
        (let ((p (cons (lambda (a) a) 1)))
          ((car p) 5))
        """
        result = analyze_kcfa(compile_program(source), 1)
        assert AConst(5) in result.halt_values
        assert BASIC not in result.halt_values

    def test_quoted_structure_is_basic(self):
        result = analyze_kcfa(compile_program("(car '(1 2))"), 1)
        assert result.halt_values == {BASIC}

    def test_distinct_cons_sites_distinct_pairs(self):
        source = """
        (let ((p (cons (lambda (a) a) 1))
              (q (cons (lambda (b) b) 2)))
          (cons ((car p) 1) ((car q) 2)))
        """
        result = analyze_kcfa(compile_program(source), 1)
        # each (car _) site sees exactly one lambda
        inlinable = result.inlinable_call_sites()
        assert len(inlinable) >= 2


class TestRecursion:
    def test_factorial_terminates(self):
        program = compile_program(
            "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))"
            "(fact 5)")
        result = analyze_kcfa(program, 1)
        assert BASIC in result.halt_values

    def test_mutual_recursion(self):
        program = compile_program("""
            (define (even? n) (if (= n 0) #t (odd? (- n 1))))
            (define (odd? n) (if (= n 0) #f (even? (- n 1))))
            (even? 8)
        """)
        result = analyze_kcfa(program, 1)
        assert result.halt_values  # terminates with some flow

    def test_nonterminating_program_analyzes_fine(self):
        # The abstract interpretation of a diverging program reaches a
        # fixpoint even though the concrete run would not.
        program = compile_program("(define (loop) (loop)) (loop)")
        result = analyze_kcfa(program, 1)
        assert result.halt_values == frozenset()


class TestBudget:
    def test_timeout_raised(self):
        from repro.generators.worstcase import worst_case_program
        program = worst_case_program(12)
        with pytest.raises(AnalysisTimeout):
            analyze_kcfa(program, 1, Budget(max_steps=200))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            analyze_kcfa(compile_program("1"), -1)


class TestNaiveEngine:
    def test_matches_single_threaded_flow(self):
        source = "(let ((f (lambda (x) x))) (cons (f 1) (f 2)))"
        program = compile_program(source)
        fast = analyze_kcfa(program, 1)
        naive = analyze_kcfa_naive(program, 1)
        assert naive.halt_values == fast.halt_values
        assert {lam.label for lams in naive.callees.values()
                for lam in lams} == \
            {lam.label for lams in fast.callees.values()
             for lam in lams}

    def test_state_count_exceeds_config_count(self):
        # Per-state stores split configurations: the naive system
        # space is at least as large.
        program = compile_program(
            "(define (f x) x) (cons (f 1) (f 2))")
        naive = analyze_kcfa_naive(program, 0)
        assert naive.state_count >= naive.config_count

    def test_naive_is_more_expensive(self):
        program = compile_program(
            "(define (f x) x) (cons (f 1) (cons (f 2) (f 3)))")
        fast = analyze_kcfa(program, 0)
        naive = analyze_kcfa_naive(program, 0)
        assert naive.steps >= fast.steps


class TestResultQueries:
    def test_flow_of_by_stem(self):
        program = compile_program(
            "(let ((g (lambda (x) x))) (g 3))")
        result = analyze_kcfa(program, 1)
        g_name = next(name for name in program.variables
                      if name.startswith("g"))
        assert len(result.lambdas_of(g_name)) == 1

    def test_call_graph_builds(self):
        program = compile_program(
            "(define (f x) x) (define (g y) (f y)) (g 1)")
        result = analyze_kcfa(program, 1)
        graph = result.call_graph()
        assert graph.number_of_edges() >= 2

    def test_summary_keys(self):
        result = analyze_kcfa(compile_program("1"), 1)
        summary = result.summary()
        assert summary["analysis"] == "k-CFA"
        assert summary["timed_out"] is False
