"""Differential suite: specialized vs. generic engine, byte for byte.

The per-policy specialization stage (:mod:`repro.analysis.specialize`)
promises more than equal fixpoints — it promises the *same
trajectory*: identical rendered reports, identical step counts and
identical reachable-configuration sets, across every registered
analysis and both value domains.  That is what lets CI diff whole
bench reports between ``--no-specialize`` and the default path, and
what the ``specialized=True`` registry knob asserts.

The harness here is the enforcement: ``run_both`` executes one
analysis twice (generic, then specialized) and
``assert_identical`` compares everything observable.  A spec that
registers ``specialized=True`` but diverges fails this suite — the
final test proves the harness actually catches such an impostor.
"""

from __future__ import annotations

import pytest

from shared_corpus import EXPLODES, small_sources

from repro.analysis.registry import registry
from repro.errors import UsageError
from repro.scheme.cps_transform import compile_program
from repro.service.jobs import render_fj_reports, render_reports

SCHEME_SPECS = registry().specs("scheme")
FJ_SPECS = registry().specs("fj")
VALUE_MODES = ("interned", "plain")

#: Engine paths the stage is expected to pick per analysis (context
#: depth 0 vs. depth >= 1) — pinned so a refactor cannot silently
#: stop specializing an analysis while this suite vacuously passes.
EXPECTED_PATHS = {
    ("zero", 0): "specialized:zero-flat",
    ("mcfa", 0): "specialized:zero-flat",
    ("poly", 0): "specialized:zero-flat",
    ("mcfa", 1): "specialized:flat",
    ("poly", 1): "specialized:flat",
    ("kcfa", 1): "specialized:shared",
    ("kcfa-naive", 1): "generic",
    ("kcfa-gc", 1): "generic",
    ("pushdown", 0): "generic",
    ("pushdown", 1): "generic",
    ("fj-poly", 0): "specialized:zero-fj-flat",
    ("fj-poly", 1): "generic",
    ("fj-mcfa", 1): "generic",
    ("fj-kcfa", 0): "generic",
}


def test_uncovered_specs_register_the_knob_off():
    """Specs the specializer cannot cover must say so: the analyses
    listing and the bench axis advertise ``specialized`` truthfully."""
    for name in ("kcfa-gc", "kcfa-naive", "fj-kcfa-gc", "fj-kcfa",
                 "pushdown"):
        assert registry().get(name).specialized is False, name


def run_both(spec, program, parameter, plain=False, obj_depth=None):
    generic = spec.run(program, parameter, plain=plain,
                       specialize=False, obj_depth=obj_depth)
    special = spec.run(program, parameter, plain=plain,
                       specialize=True, obj_depth=obj_depth)
    return generic, special


def assert_identical(generic, special, render, context=""):
    """Everything observable must match: the rendered report bytes,
    the trajectory (steps) and the reachable configurations."""
    assert render(generic) == render(special), \
        f"report bytes diverged {context}"
    assert generic.steps == special.steps, \
        f"trajectories diverged {context}"
    assert generic.configs == special.configs, \
        f"reachable configurations diverged {context}"


# -- Scheme ---------------------------------------------------------------


SCHEME_CASES = [
    (name, spec, context, values)
    for name in sorted(small_sources())
    for spec in SCHEME_SPECS
    for context in ((0, 1) if spec.name in ("mcfa", "poly") else (1,))
    for values in VALUE_MODES
    if (name, spec.name) not in EXPLODES
]


@pytest.mark.parametrize(
    "name,spec,context,values", SCHEME_CASES,
    ids=lambda value: getattr(value, "name", value))
def test_scheme_specialized_byte_identical(name, spec, context,
                                           values):
    program = compile_program(small_sources()[name])
    generic, special = run_both(spec, program, context,
                                plain=values == "plain")
    assert_identical(
        generic, special,
        lambda result: render_reports(program, result),
        context=f"({name}, {spec.name}, n={context}, {values})")
    assert generic.engine_path == "generic"


# -- Featherweight Java ---------------------------------------------------


FJ_CASES = [
    (name, spec, context, values)
    for name in ("pairs", "dispatch", "linked_list", "oo_identity")
    for spec in FJ_SPECS
    for context in (0, 1)
    for values in VALUE_MODES
]


@pytest.mark.parametrize(
    "name,spec,context,values", FJ_CASES,
    ids=lambda value: getattr(value, "name", value))
def test_fj_specialized_byte_identical(name, spec, context, values):
    from repro.fj import parse_fj
    from repro.fj.examples import ALL_EXAMPLES
    program = parse_fj(ALL_EXAMPLES[name])
    generic, special = run_both(spec, program, context,
                                plain=values == "plain")
    assert_identical(
        generic, special,
        lambda result: render_fj_reports(program, result),
        context=f"({name}, {spec.name}, n={context}, {values})")


def test_fj_hybrid_obj_depth_axis_identical():
    from repro.fj import parse_fj
    from repro.fj.examples import ALL_EXAMPLES
    spec = registry().get("fj-hybrid")
    program = parse_fj(ALL_EXAMPLES["oo_identity"])
    for obj_depth in (0, 1, 2):
        generic, special = run_both(spec, program, 1,
                                    obj_depth=obj_depth)
        assert_identical(
            generic, special,
            lambda result: render_fj_reports(program, result),
            context=f"(oo_identity, fj-hybrid, obj={obj_depth})")


# -- random programs ------------------------------------------------------


@pytest.mark.parametrize("seed", (5, 23, 71, 104))
def test_random_scheme_programs_identical(seed):
    from repro.generators.random_programs import random_program
    program = random_program(seed, 4)
    for spec in SCHEME_SPECS:
        if spec.engine != "single-store":
            continue  # naive drivers can explode on random terms
        for context in (0, 1):
            generic, special = run_both(spec, program, context)
            assert_identical(
                generic, special,
                lambda result: render_reports(program, result),
                context=f"(seed {seed}, {spec.name}, n={context})")


# -- which path ran -------------------------------------------------------


@pytest.mark.parametrize("key", sorted(EXPECTED_PATHS),
                         ids=lambda key: f"{key[0]}-{key[1]}")
def test_expected_engine_path(key):
    name, context = key
    spec = registry().get(name)
    if spec.language == "fj":
        from repro.fj import parse_fj
        from repro.fj.examples import ALL_EXAMPLES
        program = parse_fj(ALL_EXAMPLES["pairs"])
    else:
        program = compile_program("((lambda (x) x) 1)")
    result = spec.run(program, context)
    assert result.engine_path == EXPECTED_PATHS[key]


def test_escape_hatch_forces_generic():
    program = compile_program("((lambda (x) x) 1)")
    result = registry().get("zero").run(program, 0, specialize=False)
    assert result.engine_path == "generic"


def test_obj_depth_rejected_off_the_ladder():
    program = compile_program("((lambda (x) x) 1)")
    with pytest.raises(UsageError, match="no obj-depth axis"):
        registry().get("zero").run(program, 0, obj_depth=2)


# -- the harness catches impostors ----------------------------------------


def test_diverging_specialization_fails(monkeypatch):
    """A machine that claims to be a specialization but drops joins
    must fail the differential harness — proving the suite would catch
    a spec registered ``specialized=True`` that diverges."""
    from repro.analysis import specialize as specialize_module
    from repro.analysis.specialize import specialize_machine

    class Diverging:
        specialization = "diverging"

        def __init__(self, inner):
            self._inner = inner

        def boot(self, store):
            return self._inner.boot(store)

        def step(self, config, store, reads, recorder):
            succs = self._inner.step(config, store, reads, recorder)
            # Drop every join: the store never grows, so the "result"
            # is an empty flow everywhere.
            return [(succ, ()) for succ, _joins in succs]

    def broken(machine):
        inner = specialize_machine(machine)
        return Diverging(inner or machine)

    monkeypatch.setattr(specialize_module, "specialize_machine",
                        broken)
    program = compile_program(small_sources()["eta"])
    spec = registry().get("zero")
    generic, special = run_both(spec, program, 0)
    assert special.engine_path == "specialized:diverging"
    with pytest.raises(AssertionError, match="diverged"):
        assert_identical(
            generic, special,
            lambda result: render_reports(program, result))
