"""Differential suite: specialized vs. generic engine, byte for byte.

The per-policy specialization stage (:mod:`repro.analysis.specialize`)
promises more than equal fixpoints — it promises the *same
trajectory*: identical rendered reports, identical step counts and
identical reachable-configuration sets, across every registered
analysis and both value domains.  That is what lets CI diff whole
bench reports between ``--no-specialize`` and the default path, and
what the ``specialized=True`` registry knob asserts.

The harness here is the enforcement: ``run_both`` executes one
analysis twice (generic, then specialized) and
``assert_identical`` compares everything observable.  A spec that
registers ``specialized=True`` but diverges fails this suite — the
final test proves the harness actually catches such an impostor.
"""

from __future__ import annotations

import pytest

from shared_corpus import EXPLODES, small_sources

from repro.analysis.registry import registry
from repro.errors import UsageError
from repro.scheme.cps_transform import compile_program
from repro.service.jobs import render_fj_reports, render_reports

SCHEME_SPECS = registry().specs("scheme")
FJ_SPECS = registry().specs("fj")
VALUE_MODES = ("interned", "plain")

#: Engine paths the stage is expected to pick per analysis (context
#: depth 0 vs. depth >= 1) — pinned so a refactor cannot silently
#: stop specializing an analysis while this suite vacuously passes.
EXPECTED_PATHS = {
    ("zero", 0): "codegen:zero-flat",
    ("mcfa", 0): "codegen:zero-flat",
    ("poly", 0): "codegen:zero-flat",
    ("mcfa", 1): "codegen:flat",
    ("poly", 1): "codegen:flat",
    ("kcfa", 1): "specialized:shared",
    ("kcfa-naive", 1): "generic",
    ("kcfa-gc", 1): "generic",
    ("pushdown", 0): "generic",
    ("pushdown", 1): "generic",
    ("fj-poly", 0): "codegen:zero-fj-flat",
    ("fj-poly", 1): "generic",
    ("fj-mcfa", 1): "generic",
    ("fj-kcfa", 0): "generic",
}

#: What the same cells run when codegen is off: the compiled
#: specialized loops — pinned so the escape hatch stays an escape
#: hatch (and so codegen cannot silently become load-bearing).
EXPECTED_NOCODEGEN_PATHS = {
    ("zero", 0): "specialized:zero-flat",
    ("mcfa", 1): "specialized:flat",
    ("fj-poly", 0): "specialized:zero-fj-flat",
}


def test_uncovered_specs_register_the_knob_off():
    """Specs the specializer cannot cover must say so: the analyses
    listing and the bench axis advertise ``specialized`` truthfully."""
    for name in ("kcfa-gc", "kcfa-naive", "fj-kcfa-gc", "fj-kcfa",
                 "pushdown"):
        assert registry().get(name).specialized is False, name


def run_both(spec, program, parameter, plain=False, obj_depth=None,
             codegen=None):
    generic = spec.run(program, parameter, plain=plain,
                       specialize=False, obj_depth=obj_depth)
    special = spec.run(program, parameter, plain=plain,
                       specialize=True, obj_depth=obj_depth,
                       codegen=codegen)
    return generic, special


def assert_identical(generic, special, render, context=""):
    """Everything observable must match: the rendered report bytes,
    the trajectory (steps) and the reachable configurations."""
    assert render(generic) == render(special), \
        f"report bytes diverged {context}"
    assert generic.steps == special.steps, \
        f"trajectories diverged {context}"
    assert generic.configs == special.configs, \
        f"reachable configurations diverged {context}"


# -- Scheme ---------------------------------------------------------------


SCHEME_CASES = [
    (name, spec, context, values)
    for name in sorted(small_sources())
    for spec in SCHEME_SPECS
    for context in ((0, 1) if spec.name in ("mcfa", "poly") else (1,))
    for values in VALUE_MODES
    if (name, spec.name) not in EXPLODES
]


@pytest.mark.parametrize(
    "name,spec,context,values", SCHEME_CASES,
    ids=lambda value: getattr(value, "name", value))
def test_scheme_specialized_byte_identical(name, spec, context,
                                           values):
    program = compile_program(small_sources()[name])
    generic, special = run_both(spec, program, context,
                                plain=values == "plain")
    assert_identical(
        generic, special,
        lambda result: render_reports(program, result),
        context=f"({name}, {spec.name}, n={context}, {values})")
    assert generic.engine_path == "generic"


# -- Featherweight Java ---------------------------------------------------


FJ_CASES = [
    (name, spec, context, values)
    for name in ("pairs", "dispatch", "linked_list", "oo_identity")
    for spec in FJ_SPECS
    for context in (0, 1)
    for values in VALUE_MODES
]


@pytest.mark.parametrize(
    "name,spec,context,values", FJ_CASES,
    ids=lambda value: getattr(value, "name", value))
def test_fj_specialized_byte_identical(name, spec, context, values):
    from repro.fj import parse_fj
    from repro.fj.examples import ALL_EXAMPLES
    program = parse_fj(ALL_EXAMPLES[name])
    generic, special = run_both(spec, program, context,
                                plain=values == "plain")
    assert_identical(
        generic, special,
        lambda result: render_fj_reports(program, result),
        context=f"({name}, {spec.name}, n={context}, {values})")


def test_fj_hybrid_obj_depth_axis_identical():
    from repro.fj import parse_fj
    from repro.fj.examples import ALL_EXAMPLES
    spec = registry().get("fj-hybrid")
    program = parse_fj(ALL_EXAMPLES["oo_identity"])
    for obj_depth in (0, 1, 2):
        generic, special = run_both(spec, program, 1,
                                    obj_depth=obj_depth)
        assert_identical(
            generic, special,
            lambda result: render_fj_reports(program, result),
            context=f"(oo_identity, fj-hybrid, obj={obj_depth})")


# -- random programs ------------------------------------------------------


@pytest.mark.parametrize("seed", (5, 23, 71, 104))
def test_random_scheme_programs_identical(seed):
    from repro.generators.random_programs import random_program
    program = random_program(seed, 4)
    for spec in SCHEME_SPECS:
        if spec.engine != "single-store":
            continue  # naive drivers can explode on random terms
        for context in (0, 1):
            generic, special = run_both(spec, program, context)
            assert_identical(
                generic, special,
                lambda result: render_reports(program, result),
                context=f"(seed {seed}, {spec.name}, n={context})")


# -- which path ran -------------------------------------------------------


@pytest.mark.parametrize("key", sorted(EXPECTED_PATHS),
                         ids=lambda key: f"{key[0]}-{key[1]}")
def test_expected_engine_path(key):
    name, context = key
    spec = registry().get(name)
    if spec.language == "fj":
        from repro.fj import parse_fj
        from repro.fj.examples import ALL_EXAMPLES
        program = parse_fj(ALL_EXAMPLES["pairs"])
    else:
        program = compile_program("((lambda (x) x) 1)")
    result = spec.run(program, context)
    assert result.engine_path == EXPECTED_PATHS[key]


def test_escape_hatch_forces_generic():
    program = compile_program("((lambda (x) x) 1)")
    result = registry().get("zero").run(program, 0, specialize=False)
    assert result.engine_path == "generic"


@pytest.mark.parametrize("key", sorted(EXPECTED_NOCODEGEN_PATHS),
                         ids=lambda key: f"{key[0]}-{key[1]}")
def test_codegen_escape_hatch_runs_compiled_loops(key):
    name, context = key
    spec = registry().get(name)
    if spec.language == "fj":
        from repro.fj import parse_fj
        from repro.fj.examples import ALL_EXAMPLES
        program = parse_fj(ALL_EXAMPLES["pairs"])
    else:
        program = compile_program("((lambda (x) x) 1)")
    result = spec.run(program, context, codegen=False)
    assert result.engine_path == EXPECTED_NOCODEGEN_PATHS[key]


def test_obj_depth_rejected_off_the_ladder():
    program = compile_program("((lambda (x) x) 1)")
    with pytest.raises(UsageError, match="no obj-depth axis"):
        registry().get("zero").run(program, 0, obj_depth=2)


# -- the harness catches impostors ----------------------------------------


def test_diverging_specialization_fails(monkeypatch):
    """A machine that claims to be a specialization but drops joins
    must fail the differential harness — proving the suite would catch
    a spec registered ``specialized=True`` that diverges."""
    from repro.analysis import specialize as specialize_module
    from repro.analysis.specialize import specialize_machine

    class Diverging:
        specialization = "diverging"

        def __init__(self, inner):
            self._inner = inner

        def boot(self, store):
            return self._inner.boot(store)

        def step(self, config, store, reads, recorder):
            succs = self._inner.step(config, store, reads, recorder)
            # Drop every join: the store never grows, so the "result"
            # is an empty flow everywhere.
            return [(succ, ()) for succ, _joins in succs]

    def broken(machine):
        inner = specialize_machine(machine)
        return Diverging(inner or machine)

    monkeypatch.setattr(specialize_module, "specialize_machine",
                        broken)
    program = compile_program(small_sources()["eta"])
    spec = registry().get("zero")
    # codegen=False: the generated-source tier sits above
    # specialize_machine and would otherwise bypass the impostor.
    generic, special = run_both(spec, program, 0, codegen=False)
    assert special.engine_path == "specialized:diverging"
    with pytest.raises(AssertionError, match="diverged"):
        assert_identical(
            generic, special,
            lambda result: render_reports(program, result))


# -- the codegen tier -----------------------------------------------------
#
# The generated-source stage (:mod:`repro.analysis.codegen`) makes the
# same trajectory promise one rung further up: per-node emitted step
# functions with bit-parallel transfer must be byte- and
# trajectory-identical to the compiled specialized loops (and hence,
# transitively, to the generic engine the suite above pins).


CODEGEN_SCHEME_SPECS = [spec for spec in SCHEME_SPECS if spec.codegen]


def run_codegen_both(spec, program, parameter, plain=False):
    """One analysis twice: compiled loops vs. generated source."""
    compiled = spec.run(program, parameter, plain=plain,
                        codegen=False)
    generated = spec.run(program, parameter, plain=plain,
                         codegen=True)
    return compiled, generated


CODEGEN_SCHEME_CASES = [
    (name, spec, context, values)
    for name in sorted(small_sources())
    for spec in CODEGEN_SCHEME_SPECS
    for context in ((0, 1) if spec.name in ("mcfa", "poly") else (0,))
    for values in VALUE_MODES
    if (name, spec.name) not in EXPLODES
]


@pytest.mark.parametrize(
    "name,spec,context,values", CODEGEN_SCHEME_CASES,
    ids=lambda value: getattr(value, "name", value))
def test_scheme_codegen_byte_identical(name, spec, context, values):
    program = compile_program(small_sources()[name])
    compiled, generated = run_codegen_both(
        spec, program, context, plain=values == "plain")
    assert_identical(
        compiled, generated,
        lambda result: render_reports(program, result),
        context=f"({name}, {spec.name}, n={context}, {values})")
    assert generated.engine_path.startswith("codegen:")
    assert compiled.engine_path.startswith("specialized:")


CODEGEN_FJ_CASES = [
    (name, values)
    for name in ("pairs", "dispatch", "linked_list", "oo_identity")
    for values in VALUE_MODES
]


@pytest.mark.parametrize("name,values", CODEGEN_FJ_CASES)
def test_fj_codegen_byte_identical(name, values):
    from repro.fj import parse_fj
    from repro.fj.examples import ALL_EXAMPLES
    spec = registry().get("fj-poly")
    program = parse_fj(ALL_EXAMPLES[name])
    compiled, generated = run_codegen_both(
        spec, program, 0, plain=values == "plain")
    assert_identical(
        compiled, generated,
        lambda result: render_fj_reports(program, result),
        context=f"({name}, fj-poly, n=0, {values})")
    assert generated.engine_path == "codegen:zero-fj-flat"


@pytest.mark.parametrize("seed", (5, 23, 71, 104))
def test_random_scheme_codegen_identical(seed):
    from repro.generators.random_programs import random_program
    program = random_program(seed, 4)
    for spec in CODEGEN_SCHEME_SPECS:
        for context in (0, 1):
            compiled, generated = run_codegen_both(spec, program,
                                                   context)
            assert_identical(
                compiled, generated,
                lambda result: render_reports(program, result),
                context=f"(seed {seed}, {spec.name}, n={context})")


@pytest.mark.parametrize("seed", (7, 42, 99))
def test_random_fj_codegen_identical(seed):
    from repro.fj import parse_fj
    from repro.generators.fj_random import fj_random_source
    spec = registry().get("fj-poly")
    program = parse_fj(fj_random_source(seed))
    compiled, generated = run_codegen_both(spec, program, 0)
    assert_identical(
        compiled, generated,
        lambda result: render_fj_reports(program, result),
        context=f"(fjrand{seed}, fj-poly, n=0)")


def test_codegen_covered_specs_advertise_the_knob():
    """``codegen=True`` in the registry must mean "this suite covers
    it" — and opted-out specs must say no (the analyses table and the
    bench axis read these)."""
    covered = {spec.name for spec in registry().specs()
               if spec.codegen}
    assert covered == {"zero", "mcfa", "poly", "fj-poly"}
    for name in ("kcfa", "pushdown", "kcfa-gc", "kcfa-naive",
                 "fj-kcfa", "fj-kcfa-gc", "fj-mcfa", "fj-hybrid",
                 "fj-obj"):
        assert registry().get(name).codegen is False, name


# -- the codegen cache: honest invalidation -------------------------------


def _disk_codegen_cache(tmp_path):
    from repro.analysis.codegen import set_default_codegen_cache
    from repro.cache import CodegenCache
    cache = CodegenCache(tmp_path / "codegen")
    set_default_codegen_cache(cache)
    return cache


def _sole_module_file(cache):
    files = sorted(cache.directory.glob("*.py"))
    assert len(files) == 1, files
    return files[0]


def test_codegen_cache_hits_across_processes_worth_of_state(
        tmp_path):
    """A fresh in-memory cache over the same directory serves the
    module from disk (one miss, then hits)."""
    from repro.analysis.codegen import set_default_codegen_cache
    from repro.cache import CodegenCache
    program = compile_program(small_sources()["eta"])
    spec = registry().get("zero")
    cache = _disk_codegen_cache(tmp_path)
    try:
        first = spec.run(program, 0)
        assert cache.stats.misses == 1 and cache.stats.writes == 1
        rewarmed = CodegenCache(tmp_path / "codegen")
        set_default_codegen_cache(rewarmed)
        second = spec.run(program, 0)
        assert rewarmed.stats.hits == 1
        assert rewarmed.stats.misses == 0
        assert render_reports(program, first) \
            == render_reports(program, second)
        assert first.steps == second.steps
    finally:
        set_default_codegen_cache(None)


def test_stale_schema_module_is_regenerated_not_served(tmp_path):
    """A cached module whose embedded SCHEMA predates the current one
    must be rejected and regenerated in place — the invalidation
    regression for any future emitter change."""
    from repro.analysis.codegen import set_default_codegen_cache
    from repro.cache import CodegenCache
    program = compile_program(small_sources()["eta"])
    spec = registry().get("zero")
    cache = _disk_codegen_cache(tmp_path)
    try:
        baseline = spec.run(program, 0)
        path = _sole_module_file(cache)
        text = path.read_text(encoding="utf-8")
        assert "SCHEMA = " in text
        path.write_text(text.replace("SCHEMA = ", "SCHEMA = -",
                                     1), encoding="utf-8")
        stale = CodegenCache(tmp_path / "codegen")
        set_default_codegen_cache(stale)
        rerun = spec.run(program, 0)
        assert stale.stats.rejected == 1
        assert stale.stats.writes == 1  # regenerated in place
        assert rerun.engine_path == "codegen:zero-flat"
        assert render_reports(program, rerun) \
            == render_reports(program, baseline)
        # The rewritten entry is valid again.
        assert "SCHEMA = -" not in path.read_text(encoding="utf-8")
    finally:
        set_default_codegen_cache(None)


def test_corrupt_cached_module_is_regenerated_not_a_crash(tmp_path):
    from repro.analysis.codegen import set_default_codegen_cache
    from repro.cache import CodegenCache
    program = compile_program(small_sources()["eta"])
    spec = registry().get("zero")
    cache = _disk_codegen_cache(tmp_path)
    try:
        baseline = spec.run(program, 0)
        path = _sole_module_file(cache)
        path.write_text("def (broken syntax", encoding="utf-8")
        corrupt = CodegenCache(tmp_path / "codegen")
        set_default_codegen_cache(corrupt)
        rerun = spec.run(program, 0)
        assert corrupt.stats.rejected == 1
        assert rerun.engine_path == "codegen:zero-flat"
        assert render_reports(program, rerun) \
            == render_reports(program, baseline)
    finally:
        set_default_codegen_cache(None)


def test_codegen_prune_drops_stale_schema_entries(tmp_path,
                                                  monkeypatch):
    program = compile_program(small_sources()["eta"])
    spec = registry().get("zero")
    from repro.analysis.codegen import set_default_codegen_cache
    cache = _disk_codegen_cache(tmp_path)
    try:
        spec.run(program, 0)
        path = _sole_module_file(cache)
        monkeypatch.setattr("repro.cache.CODEGEN_SCHEMA_VERSION",
                            9999)
        removed = cache.prune()
        assert removed == 1
        assert not path.exists()
    finally:
        set_default_codegen_cache(None)
