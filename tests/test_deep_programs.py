"""Stress tests: deeply nested programs through the whole pipeline.

Realistic CFA inputs nest thousands of terms; the tree-walking passes
raise the recursion limit for their dynamic extent
(:mod:`repro.util.recursion`), and these tests pin that behaviour.
"""

import sys

import pytest

from repro.analysis import analyze_mcfa, analyze_zerocfa
from repro.concrete import run_flat, run_shared
from repro.cps.parser import parse_cps
from repro.cps.pretty import pretty_cps
from repro.cps.simplify import simplify_program
from repro.scheme.cps_transform import compile_program
from repro.scheme.interp import run_source
from repro.util.recursion import DEFAULT_LIMIT, deep_recursion

DEPTH = 600  # comfortably past CPython's default limit of 1000 frames
             # (several frames per node)


def deep_begin(n: int) -> str:
    return "(begin " + " ".join(str(i) for i in range(n)) + ")"


def deep_arith(n: int) -> str:
    expr = "0"
    for _ in range(n):
        expr = f"(+ 1 {expr})"
    return expr


def deep_lets(n: int) -> str:
    body = "x0"
    bindings = []
    for i in range(n):
        bindings.append(f"(let ((x{i} {i}))")
    return " ".join(bindings) + " x0" + ")" * n


class TestDeepCompilation:
    def test_deep_begin_compiles_and_runs(self):
        program = compile_program(deep_begin(DEPTH))
        assert run_shared(program).value == DEPTH - 1
        assert run_flat(program).value == DEPTH - 1

    def test_deep_arith_compiles_and_runs(self):
        program = compile_program(deep_arith(DEPTH))
        assert run_shared(program).value == DEPTH

    def test_deep_lets(self):
        program = compile_program(deep_lets(DEPTH))
        assert run_shared(program).value == 0

    def test_deep_direct_interpreter(self):
        assert run_source(deep_arith(DEPTH)) == DEPTH

    def test_recursion_limit_restored(self):
        before = sys.getrecursionlimit()
        compile_program(deep_begin(100))
        assert sys.getrecursionlimit() == before

    def test_deep_recursion_never_lowers(self):
        with deep_recursion(10):  # lower than current: no-op
            assert sys.getrecursionlimit() >= 1000
        assert DEFAULT_LIMIT >= 10_000


class TestDeepAnalysisAndTools:
    def test_deep_program_analyzable(self):
        program = compile_program(deep_arith(DEPTH))
        result = analyze_zerocfa(program)
        assert result.halt_values

    def test_deep_program_mcfa(self):
        program = compile_program(deep_begin(300))
        result = analyze_mcfa(program, 1)
        assert result.halt_values

    def test_deep_pretty_and_reparse(self):
        program = compile_program(deep_arith(400))
        text = pretty_cps(program.root)
        again = parse_cps(text)
        assert again.stats() == program.stats()

    def test_deep_simplify(self):
        program = compile_program(deep_lets(400))
        simplified = simplify_program(program)
        assert run_shared(simplified).value == 0
        assert simplified.term_count() <= program.term_count()
