"""Tests for the suite-scaling generator."""

import pytest

from repro.analysis import analyze_mcfa
from repro.benchsuite import BY_NAME
from repro.benchsuite.scaling import (
    scaled_expected, scaled_program, scaled_source,
)
from repro.concrete import run_shared


class TestScaledPrograms:
    @pytest.mark.parametrize("name", ["eta", "map", "sat"])
    @pytest.mark.parametrize("copies", [1, 2, 4])
    def test_scaled_programs_run_correctly(self, name, copies):
        program = scaled_program(name, copies)
        assert run_shared(program).value == scaled_expected(copies)

    def test_terms_scale_linearly(self):
        one = scaled_program("eta", 1).term_count()
        four = scaled_program("eta", 4).term_count()
        assert 3.2 * one < four < 4.5 * one

    def test_inlinings_scale_linearly(self):
        one = analyze_mcfa(scaled_program("map", 1),
                           1).supported_inlinings()
        three = analyze_mcfa(scaled_program("map", 3),
                             1).supported_inlinings()
        assert three == 3 * one

    def test_copies_are_independent(self):
        # each copy's definitions are renamed apart: no flow bleeding
        program = scaled_program("eta", 2)
        result = analyze_mcfa(program, 1)
        # the analysis of one copy must not pollute the other: every
        # inlinable site stays inlinable (would break if copies shared
        # operators)
        assert result.supported_inlinings() == 2 * analyze_mcfa(
            scaled_program("eta", 1), 1).supported_inlinings()

    def test_quoted_data_not_renamed(self):
        # sat's quoted CNF literals must survive renaming untouched
        program = scaled_program("sat", 2)
        assert run_shared(program).value == 2

    def test_invalid_copies(self):
        with pytest.raises(ValueError):
            scaled_source(BY_NAME["eta"], 0)

    def test_scaled_source_is_reparsable(self):
        source = scaled_source(BY_NAME["map"], 2)
        assert "c0_map1" in source and "c1_map1" in source
