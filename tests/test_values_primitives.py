"""Unit tests for runtime values and the primitive table."""

import pytest

from repro.errors import EvaluationError
from repro.scheme.primitives import (
    FLOW_RELEVANT_KINDS, Primitive, SchemeUserError, is_primitive_name,
    lookup_primitive, primitive_names,
)
from repro.scheme.sexp import Symbol
from repro.scheme.values import (
    NIL, VOID, NilType, PairVal, ProcedureValue, VoidType,
    datum_to_value, is_truthy, iter_scheme_list, scheme_list,
    scheme_repr, values_equal, values_eqv,
)


class TestValueConstruction:
    def test_nil_singleton(self):
        assert NilType() is not NIL  # distinct instances exist...
        assert isinstance(NIL, NilType)  # ...but type checks suffice

    def test_scheme_list_builds_pairs(self):
        value = scheme_list(1, 2, 3)
        assert isinstance(value, PairVal)
        assert list(iter_scheme_list(value)) == [1, 2, 3]

    def test_empty_scheme_list(self):
        assert isinstance(scheme_list(), NilType)

    def test_improper_list_iteration_raises(self):
        with pytest.raises(EvaluationError):
            list(iter_scheme_list(PairVal(1, 2)))

    def test_datum_to_value_nested(self):
        value = datum_to_value((1, (2, 3), Symbol("s")))
        assert scheme_repr(value) == "(1 (2 3) s)"

    def test_datum_to_value_rejects_junk(self):
        with pytest.raises(EvaluationError):
            datum_to_value(object())


class TestTruthinessAndEquality:
    def test_only_false_is_falsy(self):
        assert not is_truthy(False)
        for value in (0, "", NIL, VOID, True, PairVal(1, 2)):
            assert is_truthy(value)

    def test_eqv_type_sensitivity(self):
        assert not values_eqv(True, 1)
        assert not values_eqv(0, False)
        assert values_eqv(3, 3)
        assert not values_eqv(3, "3")

    def test_eqv_symbols(self):
        assert values_eqv(Symbol("a"), Symbol("a"))
        assert not values_eqv(Symbol("a"), Symbol("b"))

    def test_equal_recursive(self):
        left = scheme_list(1, scheme_list(2), 3)
        right = scheme_list(1, scheme_list(2), 3)
        assert values_equal(left, right)
        assert not values_eqv(left, right)  # different objects

    def test_scheme_repr_forms(self):
        assert scheme_repr(True) == "#t"
        assert scheme_repr(PairVal(1, 2)) == "(1 . 2)"
        assert scheme_repr(scheme_list(1, 2)) == "(1 2)"
        assert scheme_repr("s") == '"s"'
        assert scheme_repr(Symbol("s")) == "s"


class TestPrimitiveTable:
    def test_lookup_known(self):
        prim = lookup_primitive("cons")
        assert isinstance(prim, Primitive)
        assert prim.kind == "cons"

    def test_lookup_unknown(self):
        assert lookup_primitive("frobnicate") is None
        assert not is_primitive_name("frobnicate")

    def test_primitive_names_frozen(self):
        names = primitive_names()
        assert "car" in names and "+" in names

    def test_every_kind_valid(self):
        valid = {"basic", "cons", "car", "cdr", "error"}
        for name in primitive_names():
            assert lookup_primitive(name).kind in valid, name

    def test_flow_relevant_kinds(self):
        assert FLOW_RELEVANT_KINDS == {"cons", "car", "cdr"}

    def test_arity_check_messages(self):
        prim = lookup_primitive("cons")
        with pytest.raises(EvaluationError, match="cons expects 2"):
            prim.apply((1,))

    def test_variadic_arity(self):
        prim = lookup_primitive("+")
        assert prim.apply(()) == 0
        assert prim.apply((1, 2, 3, 4, 5)) == 15

    def test_minimum_arity_enforced(self):
        prim = lookup_primitive("-")
        with pytest.raises(EvaluationError):
            prim.apply(())

    def test_error_primitive_raises_user_error(self):
        prim = lookup_primitive("error")
        with pytest.raises(SchemeUserError):
            prim.apply((Symbol("boom"),))

    def test_display_returns_void(self):
        prim = lookup_primitive("display")
        assert isinstance(prim.apply((1, 2)), VoidType)

    def test_procedure_predicate_on_marker(self):
        class FakeProc(ProcedureValue):
            pass
        prim = lookup_primitive("procedure?")
        assert prim.apply((FakeProc(),)) is True
        assert prim.apply((42,)) is False

    def test_string_primitives(self):
        assert lookup_primitive("symbol->string").apply(
            (Symbol("abc"),)) == "abc"
        with pytest.raises(EvaluationError):
            lookup_primitive("symbol->string").apply(("str",))
        assert lookup_primitive("string-append").apply(
            ("a", "b")) == "ab"
        with pytest.raises(EvaluationError):
            lookup_primitive("string-append").apply((Symbol("s"),))

    def test_length(self):
        prim = lookup_primitive("length")
        assert prim.apply((scheme_list(1, 2, 3),)) == 3
        with pytest.raises(EvaluationError):
            prim.apply((PairVal(1, 2),))

    def test_zero_predicate(self):
        prim = lookup_primitive("zero?")
        assert prim.apply((0,)) is True
        assert prim.apply((3,)) is False
        with pytest.raises(EvaluationError):
            prim.apply((False,))
