"""Generator-driven FJ properties: fj-poly ≡ fj-mcfa, and round-trips.

``examples/oo_sensitivity.py`` cross-checks that FJ m-CFA's stack
frames coincide with the §4.4 poly-k-CFA collapse on the
receiver-polymorphic identity example.  This suite promotes that
check from an anecdote to a property over
:mod:`repro.generators.fj_random`'s seeded corpus:

* every generated program parses, type-checks cleanly and terminates
  on the concrete machine (the generator's construction invariants —
  DAG-shaped call graph, closed constructor arguments — made
  executable);
* ``fj-poly`` and ``fj-mcfa`` at depth 1 agree on the *observable*
  halt flow — the ``(classname, allocation site)`` projection — and
  both cover the concrete result.  The exact context tuples are
  representation-specific (call-site windows vs stack frames), so
  byte-level agreement is pinned only where it is a theorem about the
  program, on the example the check came from.
"""

from __future__ import annotations

import pytest

from repro.analysis.registry import registry
from repro.fj import parse_fj, run_fj, typecheck_program
from repro.fj.examples import OO_IDENTITY
from repro.generators.fj_random import (
    fj_random_program, fj_random_source,
)

SEEDS = tuple(range(200))


def _halt_projection(result):
    return sorted({(value.classname, value.site)
                   for value in result.halt_values
                   if hasattr(value, "classname")})


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_program_properties(seed):
    # The generator is a pure function of its seed.
    source = fj_random_source(seed)
    assert source == fj_random_source(seed)
    # Parser round-trip: parsing is deterministic (labels included),
    # and the typechecker accepts every generated program.
    program = parse_fj(source)
    again = parse_fj(source)
    assert program.stats() == again.stats()
    report = typecheck_program(program)
    assert report, (seed, report.errors[:3])
    # The call graph is a DAG by construction, so the concrete
    # machine terminates with an object result.
    concrete = run_fj(program)
    value = (concrete.value.classname, concrete.value.site)
    # fj-poly ≡ fj-mcfa on the observable halt flow, both sound.
    projections = {}
    for name in ("fj-poly", "fj-mcfa"):
        result = registry().get(name).run(program, 1)
        projections[name] = _halt_projection(result)
        assert value in projections[name], (seed, name, value)
    assert projections["fj-poly"] == projections["fj-mcfa"], \
        (seed, projections)


def test_oo_identity_exact_agreement():
    """The original example-level check, verbatim: on the OO identity
    program the two policies' halt flows agree *including* contexts
    (stack frames coincide with the invocation-ticked window there)."""
    program = parse_fj(OO_IDENTITY)
    flows = {spec.name: spec.run(program, 1).halt_values
             for spec in registry().specs("fj")
             if spec.name in ("fj-poly", "fj-mcfa")}
    reprs = {name: sorted(map(repr, values))
             for name, values in flows.items()}
    assert len(set(map(tuple, reprs.values()))) == 1, reprs


def test_generator_rejects_empty_class_budget():
    with pytest.raises(ValueError, match="at least one class"):
        fj_random_source(0, classes=0)


def test_generated_corpus_varies():
    """Different seeds explore different shapes (not one program
    repeated 200 times)."""
    sources = {fj_random_source(seed) for seed in SEEDS[:50]}
    assert len(sources) > 25


def test_program_helper_parses():
    program = fj_random_program(3)
    assert program.stats()
