"""Concurrency stress: ≥8 clients, coalescing, timeout isolation.

Eight concurrent clients each submit a *unique* fast job (catching
cross-talk: every client must get exactly its own program's report
back) and then — barrier-synchronized so the submissions genuinely
overlap — one *identical* heavy job, which must coalesce onto a
single analysis run.  A ninth client concurrently submits the
guaranteed-timeout ``worst14`` k-CFA(2) cell (EXPTIME wall) under a
1-second budget: it must report ``timeout`` without stalling anyone
else.  The server's stats then have to balance exactly: every
submission is one of an executed analysis, a coalesced follower or a
cache hit.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.cache import ResultCache
from repro.generators.worstcase import worst_case_source
from repro.service.client import ServiceClient
from repro.service.jobs import JobSpec, run_job
from repro.service.server import AnalysisServer

CLIENTS = 8

#: ~0.5–1.5 s of k-CFA(1) work: long enough that barrier-synced
#: duplicate submissions overlap the leader's run and coalesce.
DUP_SOURCE = worst_case_source(12)

#: The Van Horn–Mairson doubling term at depth 14 under k = 2 cannot
#: finish within any sane budget — the guaranteed-timeout job.
TIMEOUT_SOURCE = worst_case_source(14)


def _fast_source(i: int) -> str:
    """A unique tiny program per client, tagged by a constant so a
    cross-talked report is unmistakable."""
    return f"(define (tag x) (+ x {1000 + i}))\n(tag {i})\n"


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("service-cache"))
    server = AnalysisServer(port=0, workers=2, cache=cache).start()
    yield server
    server.stop()


class TestPercentile:
    """Nearest-rank pins for :meth:`StressReport.percentile` — the
    old round-half formula returned the lower sample for p90 of two
    and drifted at exact quantile boundaries."""

    @staticmethod
    def _report(latencies):
        from repro.service.stress import StressReport
        report = StressReport(endpoint="test", clients=1,
                              requests_per_client=1, distinct=1,
                              workers=1)
        report.latencies = list(latencies)
        return report

    def test_single_sample_is_every_percentile(self):
        report = self._report([10.0])
        assert report.percentile(0.50) == 10.0
        assert report.percentile(0.90) == 10.0
        assert report.percentile(0.99) == 10.0

    def test_two_samples(self):
        report = self._report([20.0, 10.0])
        assert report.percentile(0.50) == 10.0
        assert report.percentile(0.90) == 20.0  # old formula: 10.0
        assert report.percentile(0.99) == 20.0

    def test_hundred_samples_hit_exact_ranks(self):
        report = self._report([float(n) for n in range(1, 101)])
        assert report.percentile(0.50) == 50.0
        assert report.percentile(0.90) == 90.0
        assert report.percentile(0.99) == 99.0

    def test_ten_samples_quantile_boundaries(self):
        report = self._report([float(n) for n in range(10, 0, -1)])
        assert report.percentile(0.50) == 5.0
        assert report.percentile(0.90) == 9.0
        assert report.percentile(0.99) == 10.0

    def test_empty_is_zero(self):
        assert self._report([]).percentile(0.99) == 0.0


class TestStressMix:
    def test_stress_mix(self, server):
        expected = {
            i: run_job(JobSpec(source=_fast_source(i),
                               analysis="mcfa", context=1,
                               timeout=60.0))["stdout"]
            for i in range(CLIENTS)}
        results: dict[int, tuple] = {}
        failures: list[tuple] = []
        timeout_result: dict[str, dict] = {}
        barrier = threading.Barrier(CLIENTS)

        def timeout_client():
            try:
                with ServiceClient(port=server.port) as client:
                    timeout_result["event"] = client.submit(
                        source=TIMEOUT_SOURCE, analysis="kcfa",
                        context=2, timeout=1.0)
            except Exception as error:  # surfaced via `failures`
                failures.append(("timeout-client", error))

        def worker(i: int):
            try:
                with ServiceClient(port=server.port) as client:
                    fast = client.submit(source=_fast_source(i),
                                         analysis="mcfa", context=1,
                                         timeout=60.0)
                    barrier.wait(timeout=120)
                    dup = client.submit(source=DUP_SOURCE,
                                        analysis="kcfa", context=1,
                                        timeout=300.0)
                    results[i] = (fast, dup)
            except Exception as error:
                failures.append((i, error))

        threads = [threading.Thread(target=timeout_client)]
        threads += [threading.Thread(target=worker, args=(i,))
                    for i in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        assert not failures, failures
        assert all(not thread.is_alive() for thread in threads)

        # The guaranteed-timeout job reported timeout, in isolation.
        event = timeout_result["event"]
        assert event["status"] == "timeout"
        assert "budget" in event["error"]

        # No cross-talk: each client got its own program's bytes.
        for i in range(CLIENTS):
            fast, _ = results[i]
            assert fast["status"] == "ok", fast.get("error")
            assert fast["stdout"] == expected[i], \
                f"client {i} received another client's report"

        # Duplicates: identical bytes for everyone, analysis shared.
        dups = [results[i][1] for i in range(CLIENTS)]
        assert all(dup["status"] == "ok" for dup in dups)
        assert len({dup["stdout"] for dup in dups}) == 1
        assert any(dup["coalesced"] or dup["cached"]
                   for dup in dups), \
            "no duplicate submission coalesced or hit the cache"

        with ServiceClient(port=server.port) as client:
            stats = client.stats()
        jobs = stats["jobs"]
        assert jobs["submitted"] == 2 * CLIENTS + 1
        assert jobs["completed"] == jobs["submitted"]
        # Every submission is exactly one of: executed analysis,
        # coalesced follower, cache hit.
        assert jobs["executed"] + jobs["coalesced"] \
            + stats["cache"]["hits"] == jobs["submitted"]
        assert jobs["coalesced"] >= 1, \
            "coalescing never observed in server stats"
        # 8 unique fast jobs + the timeout job + the dup leader (+1
        # slack for a submission racing the finish line).
        assert jobs["executed"] <= CLIENTS + 3
        assert jobs["timeout"] == 1
        assert jobs["error"] == 0

    def test_warm_resubmission_is_served_from_cache(self, server):
        """Identical job again, after everything settled: a disk-cache
        hit, no engine re-run (executed counter unchanged)."""
        with ServiceClient(port=server.port) as client:
            executed_before = client.stats()["jobs"]["executed"]
            hits_before = client.stats()["cache"]["hits"]
            final = client.submit(source=DUP_SOURCE, analysis="kcfa",
                                  context=1, timeout=300.0)
            stats = client.stats()
        assert final["status"] == "ok"
        assert final["cached"] is True
        assert stats["jobs"]["executed"] == executed_before
        assert stats["cache"]["hits"] == hits_before + 1

    def test_timeouts_are_never_cached(self, server):
        """Resubmitting the timeout cell re-runs it (status timeout
        again) rather than replaying a cached verdict."""
        with ServiceClient(port=server.port) as client:
            executed_before = client.stats()["jobs"]["executed"]
            final = client.submit(source=TIMEOUT_SOURCE,
                                  analysis="kcfa", context=2,
                                  timeout=1.0)
            stats = client.stats()
        assert final["status"] == "timeout"
        assert final["cached"] is False
        assert stats["jobs"]["executed"] == executed_before + 1


class TestSlowReader:
    def test_slow_reader_never_stalls_other_clients(self, server):
        """One client submits, then stops reading its socket.  The
        front door must keep serving everyone else — its writes go
        through per-connection send queues, never the event loop —
        and once the laggard finally drains, its frames arrive
        intact and in order (queued … done, correct bytes)."""
        source = "(define (laggard x) (* x 3))\n(laggard 14)\n"
        expected = run_job(JobSpec(source=source, analysis="mcfa",
                                   context=1,
                                   timeout=60.0))["stdout"]
        raw = socket.create_connection(("127.0.0.1", server.port),
                                       timeout=60)
        try:
            raw.sendall((json.dumps(
                {"op": "submit", "id": "laggard", "source": source,
                 "analysis": "mcfa", "context": 1,
                 "timeout": 60.0}) + "\n").encode("utf-8"))

            # While the laggard reads nothing, a live client's whole
            # conversation — including a job of its own — completes.
            with ServiceClient(port=server.port) as client:
                brisk = client.submit(
                    source="(define (brisk x) (+ x 7))\n(brisk 5)\n",
                    analysis="mcfa", context=1, timeout=60.0)
            assert brisk["status"] == "ok"

            # Now drain: everything queued for us is still there.
            events = []
            with raw.makefile("r", encoding="utf-8") as reader:
                for line in reader:
                    events.append(json.loads(line))
                    if events[-1].get("event") == "done":
                        break
        finally:
            raw.close()
        assert [event["event"] for event in events[:1]] == ["queued"]
        done = events[-1]
        assert done["event"] == "done"
        assert done["job"] == "laggard"
        assert done["status"] == "ok"
        assert done["stdout"] == expected
