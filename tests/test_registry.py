"""The analysis registry: the single source of truth, and sound.

Two families of checks:

* *consistency* — every front end (job core, bench runner, CLI) reads
  its analysis names from the registry, unknown names raise
  :class:`~repro.errors.UsageError`, and every registered factory
  actually runs;
* *soundness property* — any registered Scheme policy must cover a
  concrete run on randomly generated programs (α-containment via the
  machinery of :mod:`repro.analysis.abstraction`), and any registered
  FJ policy must cover the concrete FJ machine's result.  A new
  policy registered tomorrow is picked up by these tests with no
  edits — registering is what makes it tested.
"""

from __future__ import annotations

import pytest

from repro.analysis.abstraction import (
    check_flat_soundness, check_kcfa_soundness,
    check_summary_soundness,
)
from repro.analysis.registry import AnalysisSpec, registry
from repro.concrete import run_flat, run_shared
from repro.errors import UsageError
from repro.generators.random_programs import random_program

SCHEME_SPECS = registry().specs("scheme")
FJ_SPECS = registry().specs("fj")


class TestConsistency:
    def test_front_ends_read_the_registry(self):
        from repro.benchsuite.runner import ALL_ANALYSES
        from repro.service.jobs import FJ_ANALYSES, SCHEME_ANALYSES
        from repro.__main__ import ANALYSES
        names = registry().names()
        assert SCHEME_ANALYSES + FJ_ANALYSES == names
        assert ALL_ANALYSES == names
        assert ANALYSES == names

    def test_new_policies_are_registered(self):
        names = registry().names("fj")
        assert "fj-mcfa" in names
        assert "fj-hybrid" in names
        assert "fj-obj" in names

    def test_unknown_name_is_a_usage_error(self):
        with pytest.raises(UsageError, match="unknown analysis"):
            registry().get("super-cfa")

    def test_language_filter_misses_are_usage_errors(self):
        # A registered name with the wrong language names the real
        # problem instead of claiming the analysis is unknown.
        with pytest.raises(UsageError,
                           match="is a fj analysis, not scheme"):
            registry().get("fj-kcfa", language="scheme")

    def test_duplicate_registration_rejected(self):
        spec = registry().get("kcfa")
        with pytest.raises(ValueError, match="already registered"):
            registry().register(spec)

    @pytest.mark.parametrize(
        "spec", SCHEME_SPECS, ids=lambda spec: spec.name)
    def test_every_scheme_factory_runs(self, spec: AnalysisSpec,
                                       small_programs):
        _source, program = small_programs["identity"]
        result = spec.run(program, 1)
        assert result.analysis == spec.display
        assert result.halt_values

    @pytest.mark.parametrize(
        "spec", FJ_SPECS, ids=lambda spec: spec.name)
    def test_every_fj_factory_runs(self, spec: AnalysisSpec):
        from repro.fj import parse_fj
        from repro.fj.examples import ALL_EXAMPLES
        program = parse_fj(ALL_EXAMPLES["pairs"])
        result = spec.run(program, 1)
        assert result.analysis == spec.display
        assert result.configs
        assert result.halt_values


#: How each registry ``concrete`` mode is checked: which concrete
#: machine to run and which α-containment checker applies.
def _check_scheme_soundness(spec: AnalysisSpec, program):
    if spec.concrete == "shared-history":
        concrete = run_shared(program, record_trace=True,
                              time_mode="history")
        return check_kcfa_soundness(spec.run(program, 1), concrete)
    if spec.concrete == "flat-stack":
        concrete = run_flat(program, record_trace=True,
                            env_policy="stack")
        return check_flat_soundness(spec.run(program, 1), concrete)
    if spec.concrete == "flat-history":
        concrete = run_flat(program, record_trace=True,
                            env_policy="history")
        return check_flat_soundness(spec.run(program, 1), concrete)
    if spec.concrete == "summary-stack":
        concrete = run_flat(program, record_trace=True,
                            env_policy="stack")
        return check_summary_soundness(spec.run(program, 1), concrete)
    raise AssertionError(
        f"registered analysis {spec.name!r} declares no concrete "
        f"soundness mode — every Scheme policy must be checkable")


class TestSoundnessProperty:
    """Any registered policy yields sound results vs the concrete
    interpreters on the random-program generator."""

    SEEDS = (3, 11, 29, 57, 91)

    @pytest.mark.parametrize(
        "spec", SCHEME_SPECS, ids=lambda spec: spec.name)
    def test_scheme_policies_sound(self, spec: AnalysisSpec):
        for seed in self.SEEDS:
            program = random_program(seed, 3)
            report = _check_scheme_soundness(spec, program)
            if spec.engine.endswith("+gc"):
                # Abstract GC drops *dead* concrete bindings by
                # design; the program result must still be covered.
                gaps = [violation for violation in report.violations
                        if violation.startswith("halt")]
                assert not gaps, (spec.name, seed, gaps)
                continue
            assert report, (spec.name, seed, report.violations[:3])

    @pytest.mark.parametrize(
        "spec", FJ_SPECS, ids=lambda spec: spec.name)
    @pytest.mark.parametrize("name", ["pairs", "dispatch",
                                      "linked_list", "oo_identity"])
    def test_fj_policies_cover_concrete_result(self, spec, name):
        """The concrete FJ result object must be covered by the
        abstract halt flow set (class + allocation site)."""
        from repro.fj import parse_fj, run_fj
        from repro.fj.examples import ALL_EXAMPLES
        program = parse_fj(ALL_EXAMPLES[name])
        concrete = run_fj(program)
        result = spec.run(program, 1)
        abstract = {(value.classname, value.site)
                    for value in result.halt_values
                    if hasattr(value, "classname")}
        value = concrete.value
        assert (value.classname, value.site) in abstract, \
            (spec.name, name, abstract)
