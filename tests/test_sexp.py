"""Tests for the S-expression reader and writer."""

import pytest

from repro.errors import SchemeSyntaxError
from repro.scheme.sexp import (
    Position, SexpList, Symbol, iter_symbols, parse_sexp, parse_sexps,
    sexp_equal, write_sexp,
)


class TestAtoms:
    def test_integer(self):
        assert parse_sexp("42") == 42

    def test_negative_integer(self):
        assert parse_sexp("-17") == -17

    def test_explicit_positive(self):
        assert parse_sexp("+3") == 3

    def test_symbol(self):
        datum = parse_sexp("foo")
        assert isinstance(datum, Symbol)
        assert datum == "foo"

    def test_symbol_with_punctuation(self):
        assert parse_sexp("list->vector!?") == "list->vector!?"

    def test_true(self):
        assert parse_sexp("#t") is True

    def test_false(self):
        assert parse_sexp("#f") is False

    def test_string(self):
        assert parse_sexp('"hello world"') == "hello world"

    def test_string_escapes(self):
        assert parse_sexp(r'"a\nb\tc\"d\\e"') == 'a\nb\tc"d\\e'

    def test_string_is_not_symbol(self):
        assert not isinstance(parse_sexp('"sym"'), Symbol)

    def test_arithmetic_symbols(self):
        assert isinstance(parse_sexp("+"), Symbol)
        assert isinstance(parse_sexp("-"), Symbol)

    def test_number_like_symbol(self):
        assert isinstance(parse_sexp("1+"), Symbol)


class TestLists:
    def test_empty_list(self):
        datum = parse_sexp("()")
        assert isinstance(datum, SexpList)
        assert len(datum) == 0

    def test_flat_list(self):
        assert parse_sexp("(1 2 3)") == (1, 2, 3)

    def test_nested_list(self):
        assert parse_sexp("(a (b (c)) d)") == \
            ("a", ("b", ("c",)), "d")

    def test_square_brackets(self):
        assert parse_sexp("[1 2]") == (1, 2)

    def test_mixed_brackets(self):
        assert parse_sexp("(let ([x 1]) x)") == \
            ("let", (("x", 1),), "x")

    def test_mismatched_brackets_rejected(self):
        with pytest.raises(SchemeSyntaxError):
            parse_sexp("(1 2]")

    def test_unterminated_list(self):
        with pytest.raises(SchemeSyntaxError):
            parse_sexp("(1 2")

    def test_stray_closer(self):
        with pytest.raises(SchemeSyntaxError):
            parse_sexp(")")


class TestQuoteSugar:
    def test_quote(self):
        assert parse_sexp("'x") == ("quote", "x")

    def test_quoted_list(self):
        assert parse_sexp("'(1 2)") == ("quote", (1, 2))

    def test_quasiquote(self):
        assert parse_sexp("`x") == ("quasiquote", "x")

    def test_unquote(self):
        assert parse_sexp(",x") == ("unquote", "x")

    def test_unquote_splicing(self):
        assert parse_sexp(",@xs") == ("unquote-splicing", "xs")

    def test_nested_quotes(self):
        assert parse_sexp("''a") == ("quote", ("quote", "a"))


class TestComments:
    def test_line_comment(self):
        assert parse_sexps("1 ; comment\n2") == [1, 2]

    def test_comment_at_eof(self):
        assert parse_sexps("42 ; trailing") == [42]

    def test_block_comment(self):
        assert parse_sexps("1 #| block |# 2") == [1, 2]

    def test_nested_block_comment(self):
        assert parse_sexps("1 #| a #| b |# c |# 2") == [1, 2]

    def test_unterminated_block_comment(self):
        with pytest.raises(SchemeSyntaxError):
            parse_sexps("1 #| nope")

    def test_datum_comment(self):
        assert parse_sexps("1 #;(skipped datum) 2") == [1, 2]


class TestPositions:
    def test_symbol_position(self):
        datum = parse_sexp("\n  foo")
        assert datum.pos == Position(2, 3)

    def test_list_position(self):
        datum = parse_sexp("\n\n(a)")
        assert datum.pos.line == 3

    def test_error_carries_position(self):
        with pytest.raises(SchemeSyntaxError) as exc_info:
            parse_sexp('"unterminated')
        assert exc_info.value.line == 1


class TestMultipleData:
    def test_parse_sexps(self):
        assert parse_sexps("1 2 3") == [1, 2, 3]

    def test_parse_sexp_rejects_multiple(self):
        with pytest.raises(SchemeSyntaxError):
            parse_sexp("1 2")

    def test_parse_sexp_rejects_empty(self):
        with pytest.raises(SchemeSyntaxError):
            parse_sexp("   ; nothing\n")


class TestWriter:
    @pytest.mark.parametrize("text", [
        "42", "#t", "#f", "foo", "(1 2 3)", "(a (b c) ())",
        '"str"', "(quote x)",
    ])
    def test_roundtrip(self, text):
        datum = parse_sexp(text)
        again = parse_sexp(write_sexp(datum))
        assert sexp_equal(datum, again)

    def test_write_string_escapes(self):
        assert write_sexp('a"b') == '"a\\"b"'

    def test_write_rejects_unknown(self):
        with pytest.raises(TypeError):
            write_sexp(3.14)


class TestSexpEqual:
    def test_symbol_vs_string_distinct(self):
        assert not sexp_equal(Symbol("a"), "a")
        assert not sexp_equal("a", Symbol("a"))

    def test_bool_vs_int_distinct(self):
        assert not sexp_equal(True, 1)
        assert not sexp_equal(0, False)

    def test_lists_compare_structurally(self):
        assert sexp_equal(parse_sexp("(1 (2) 3)"), parse_sexp("(1 (2) 3)"))


class TestIterSymbols:
    def test_finds_all_symbols(self):
        datum = parse_sexp("(a 1 (b #t) c)")
        assert [str(s) for s in iter_symbols(datum)] == ["a", "b", "c"]
