"""Soundness of the client-analysis passes, machine-checked.

The concrete machines are the ground truth: every call the shared-env
CPS machine (or the FJ machine) actually makes must appear in every
registered policy's abstract call graph — a dynamic edge may only be
missing if the analysis flagged the site's operator as unknown — and
every closure that concretely escapes (reaches the final answer or a
cons cell) must be covered by the ``escaping`` pass.

Checked on the hand-picked sources, the §6.2 suite, and the random
generators (Scheme and FJ), driven off the analysis registry so a
newly registered policy is tested automatically.
"""

import pytest

from repro.analysis.clients import run_result_query
from repro.analysis.registry import registry, run_analysis
from repro.concrete.shared_env import SharedEnvMachine
from repro.concrete.values import SharedClosure
from repro.cps.syntax import AppCall
from repro.fj.concrete import FJMachine, FJObjectVal
from repro.generators.fj_random import fj_random_program
from repro.generators.random_programs import random_program
from repro.scheme.cps_transform import compile_program
from repro.scheme.values import PairVal

SCHEME_POLICIES = registry().names("scheme")
FJ_POLICIES = registry().names("fj")

#: Policies cheap enough for every program here; the naive engine
#: enumerates whole stores as states, so it gets the small sources
#: only (mirroring ``test_soundness.TestNaiveSoundness``).
FAST_SCHEME = tuple(name for name in SCHEME_POLICIES
                    if name != "kcfa-naive")

SOURCES = {
    "apply": "((lambda (x y) (+ x y)) 1 2)",
    "closures": """
        (define (make-adder n) (lambda (x) (+ x n)))
        (cons ((make-adder 1) 10) ((make-adder 2) 20))
    """,
    "escape-halt": "(define (mk n) (lambda (x) (+ x n))) (mk 1)",
    "escape-heap": """
        (define (box f) (cons f 0))
        (car (box (lambda (y) y)))
    """,
    "hof": """
        (define (compose f g) (lambda (x) (f (g x))))
        ((compose (lambda (a) (cons a 1)) (lambda (b) (cons 2 b))) 's)
    """,
    "branching": """
        (define (pick b) (if b (lambda (x) (+ x 1)) (lambda (y) (* y 2))))
        (cons ((pick #t) 3) ((pick (= 1 2)) 4))
    """,
}

RANDOM_SEEDS = (1, 2, 3, 4, 5, 6)
FJ_SEEDS = (1, 2, 3, 4, 5)


# ---------------------------------------------------------------------------
# Concrete ground truth
# ---------------------------------------------------------------------------

def scheme_dynamic_run(program):
    """Run concretely; return (dynamic call edges, machine, value).

    An edge is ``(call label, applied lambda label)`` for every
    ``AppCall`` the machine actually stepped through.  The shared-env
    store is write-once, so re-evaluating each trace entry's operator
    after the run recovers exactly the closure that was applied.
    """
    machine = SharedEnvMachine(program, record_trace=True)
    result = machine.run()
    edges = set()
    for entry in machine.trace:
        call = entry.call
        if not isinstance(call, AppCall):
            continue
        value = machine.evaluate(call.fn, dict(entry.benv))
        if isinstance(value, SharedClosure):
            edges.add((call.label, value.lam.label))
    return edges, machine, result.value


def _closures_in(value) -> set:
    """Lambda labels of every closure inside *value* (through pairs)."""
    labels: set = set()
    stack = [value]
    while stack:
        item = stack.pop()
        if isinstance(item, SharedClosure):
            labels.add(item.lam.label)
        elif isinstance(item, PairVal):
            stack.append(item.car)
            stack.append(item.cdr)
    return labels


def assert_call_graph_covers(result, edges) -> None:
    """Every dynamic edge is abstractly known — or its site's operator
    abstracted to ⊤ (the ``Unknown`` lattice point covers it)."""
    answer = run_result_query(result, "call-graph")
    targets = {site["site"]: set(site["targets"])
               for site in answer["sites"]}
    unknown = {site["site"] for site in answer["sites"]
               if site["lattice"] == "Unknown"}
    for site, lam_label in edges:
        assert site in unknown or lam_label in targets.get(
            site, set()), (
            f"dynamic call {site} -> λ{lam_label} missing from the "
            f"{result.analysis}[{result.parameter}] call graph")


class _TracingFJMachine(FJMachine):
    """Records ``(invoke label, resolved qualified name)`` at dispatch
    time — the FJ store is *not* write-once (locals reassign), so the
    receiver must be read when the invocation happens, not replayed."""

    def __init__(self, program, **kwargs):
        super().__init__(program, **kwargs)
        self.dynamic_edges: set = set()

    def _invoke(self, stmt, exp, benv, kont_ptr, time):
        receiver = self.store[benv[exp.target]]
        if isinstance(receiver, FJObjectVal):
            method = self.program.lookup_method(receiver.classname,
                                                exp.method)
            if method is not None:
                self.dynamic_edges.add(
                    (stmt.label, method.qualified_name))
        return super()._invoke(stmt, exp, benv, kont_ptr, time)


# ---------------------------------------------------------------------------
# Scheme: dynamic ⊆ abstract call graph, for every registered policy
# ---------------------------------------------------------------------------

class TestSchemeCallGraphSoundness:
    @pytest.mark.parametrize("analysis", FAST_SCHEME)
    @pytest.mark.parametrize("name", sorted(SOURCES))
    def test_sources(self, name, analysis):
        program = compile_program(SOURCES[name])
        edges, _, _ = scheme_dynamic_run(program)
        assert_call_graph_covers(
            run_analysis(analysis, program, 1), edges)

    @pytest.mark.parametrize("name", ["apply", "closures",
                                      "escape-halt"])
    def test_naive_engine(self, name):
        program = compile_program(SOURCES[name])
        edges, _, _ = scheme_dynamic_run(program)
        assert_call_graph_covers(
            run_analysis("kcfa-naive", program, 1), edges)

    @pytest.mark.parametrize("analysis", FAST_SCHEME)
    @pytest.mark.parametrize("seed", RANDOM_SEEDS)
    def test_random_programs(self, seed, analysis):
        program = random_program(seed)
        edges, _, _ = scheme_dynamic_run(program)
        assert_call_graph_covers(
            run_analysis(analysis, program, 1), edges)

    @pytest.mark.parametrize("analysis", ["kcfa", "mcfa", "poly",
                                          "zero", "pushdown"])
    @pytest.mark.parametrize("bench_name", ["eta", "map",
                                            "scm2java"])
    def test_suite(self, bench_name, analysis, suite_compiled):
        program = suite_compiled[bench_name]
        edges, _, _ = scheme_dynamic_run(program)
        assert_call_graph_covers(
            run_analysis(analysis, program, 1), edges)

    def test_context_insensitive_covers_zero(self):
        # The k = 0 row of the ladder must be sound too.
        for name in sorted(SOURCES):
            program = compile_program(SOURCES[name])
            edges, _, _ = scheme_dynamic_run(program)
            assert_call_graph_covers(
                run_analysis("kcfa", program, 0), edges)


# ---------------------------------------------------------------------------
# Scheme: concretely escaping closures ⊆ the escaping pass
# ---------------------------------------------------------------------------

def _concrete_escapes(machine, final_value):
    """(labels escaping to halt, labels escaping into cons cells)."""
    to_halt = _closures_in(final_value)
    to_heap: set = set()
    for value in machine.store.values():
        if isinstance(value, PairVal):
            to_heap |= _closures_in(value)
    return to_halt, to_heap


class TestSchemeEscapingSoundness:
    @pytest.mark.parametrize("analysis", FAST_SCHEME)
    @pytest.mark.parametrize("name", sorted(SOURCES))
    def test_sources(self, name, analysis):
        program = compile_program(SOURCES[name])
        _, machine, value = scheme_dynamic_run(program)
        to_halt, to_heap = _concrete_escapes(machine, value)
        answer = run_result_query(
            run_analysis(analysis, program, 1), "escaping")
        covered = set(answer["escaping"])
        # Reaching the program's answer is visible to every policy.
        assert to_halt <= covered, (analysis, to_halt - covered)
        if not analysis.endswith("-gc"):
            # Abstract GC may collect cells that are concretely
            # written but dead; non-collecting policies must keep
            # every heap escape.
            assert to_heap <= covered, (analysis, to_heap - covered)

    @pytest.mark.parametrize("seed", RANDOM_SEEDS)
    def test_random_programs(self, seed):
        program = random_program(seed)
        _, machine, value = scheme_dynamic_run(program)
        to_halt, to_heap = _concrete_escapes(machine, value)
        for analysis in FAST_SCHEME:
            answer = run_result_query(
                run_analysis(analysis, program, 1), "escaping")
            covered = set(answer["escaping"])
            assert to_halt <= covered
            if not analysis.endswith("-gc"):
                assert to_heap <= covered

    @pytest.mark.parametrize("bench_name", ["eta", "map"])
    def test_suite(self, bench_name, suite_compiled):
        program = suite_compiled[bench_name]
        _, machine, value = scheme_dynamic_run(program)
        to_halt, to_heap = _concrete_escapes(machine, value)
        answer = run_result_query(
            run_analysis("mcfa", program, 1), "escaping")
        covered = set(answer["escaping"])
        assert to_halt <= covered
        assert to_heap <= covered


# ---------------------------------------------------------------------------
# FJ: dynamic dispatch targets ⊆ invoke_targets, whole registered family
# ---------------------------------------------------------------------------

class TestFJCallGraphSoundness:
    @pytest.mark.parametrize("analysis", FJ_POLICIES)
    @pytest.mark.parametrize("seed", FJ_SEEDS)
    def test_fjrand(self, seed, analysis):
        program = fj_random_program(seed)
        machine = _TracingFJMachine(program, record_trace=True)
        machine.run()
        result = run_analysis(analysis, program, 1, language="fj")
        answer = run_result_query(result, "call-graph")
        targets = {site["site"]: set(site["targets"])
                   for site in answer["sites"]}
        for site, qualified in machine.dynamic_edges:
            assert qualified in targets.get(site, set()), (
                f"dynamic dispatch {site} -> {qualified} missing "
                f"from {analysis}[1]")

    @pytest.mark.parametrize("seed", FJ_SEEDS[:2])
    def test_devirt_candidates_match_the_dynamics(self, seed):
        """A devirtualization candidate's single receiver class must
        be the class the machine actually dispatched through."""
        program = fj_random_program(seed)
        machine = _TracingFJMachine(program, record_trace=True)
        machine.run()
        result = run_analysis("fj-kcfa", program, 1, language="fj")
        answer = run_result_query(result, "devirt")
        dynamic = {}
        for site, qualified in machine.dynamic_edges:
            dynamic.setdefault(site, set()).add(qualified)
        for candidate in answer["candidates"]:
            seen = dynamic.get(candidate["site"])
            if seen:
                assert seen <= set(candidate["targets"])
