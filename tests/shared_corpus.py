"""The program corpus shared by the byte-compatibility suites.

``tests/test_service_differential.py`` (server bytes == analyze
bytes) and ``tests/test_golden_reports.py`` (analyze bytes == pinned
goldens) enforce one contract together, so they must cover the same
programs: both import this module rather than keeping private copies
that could silently diverge.
"""

from __future__ import annotations

from repro.generators.random_programs import random_core_expression
from repro.scheme.pretty import pretty


def random_source(seed: int, depth: int) -> str:
    """Random closed terminating program, as re-parseable text."""
    return pretty(random_core_expression(seed, depth))


def small_sources() -> dict[str, str]:
    """Small programs crossed with the full analysis × domain matrix."""
    from repro.benchsuite.programs import BY_NAME
    return {
        "eta": BY_NAME["eta"].source,
        "map": BY_NAME["map"].source,
        "rand1": random_source(1, 3),
        "rand7": random_source(7, 4),
        "rand42": random_source(42, 3),
    }


#: The naive §3.6 driver state-explodes on these pairings — which is
#: the paper's point, not a bug; both suites skip them.
EXPLODES = {("map", "kcfa-naive")}
