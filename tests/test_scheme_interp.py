"""Tests for the direct-style reference interpreter."""

import pytest

from repro.errors import (
    EvaluationError, FuelExhausted, UnboundVariableError,
)
from repro.scheme.interp import run_source
from repro.scheme.primitives import SchemeUserError
from repro.scheme.values import (
    NilType, PairVal, VoidType, scheme_repr,
)


class TestBasics:
    def test_number(self):
        assert run_source("42") == 42

    def test_application(self):
        assert run_source("((lambda (x y) (+ x y)) 3 4)") == 7

    def test_closure_capture(self):
        assert run_source(
            "(((lambda (x) (lambda (y) (- x y))) 10) 4)") == 6

    def test_if_truthiness(self):
        assert run_source("(if 0 'yes 'no)") == "yes"  # 0 is truthy
        assert run_source("(if #f 'yes 'no)") == "no"

    def test_deep_recursion_no_stack_overflow(self):
        source = """
        (define (count n acc) (if (= n 0) acc (count (- n 1) (+ acc 1))))
        (count 50000 0)
        """
        assert run_source(source) == 50000

    def test_non_tail_recursion(self):
        assert run_source(
            "(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1)))))"
            "(sum 1000)") == 500500


class TestValues:
    def test_quoted_list(self):
        result = run_source("'(1 2 3)")
        assert isinstance(result, PairVal)
        assert scheme_repr(result) == "(1 2 3)"

    def test_cons_car_cdr(self):
        assert run_source("(car (cons 1 2))") == 1
        assert run_source("(cdr (cons 1 2))") == 2

    def test_null(self):
        assert isinstance(run_source("'()"), NilType)
        assert run_source("(null? '())") is True
        assert run_source("(null? '(1))") is False

    def test_void(self):
        assert isinstance(run_source("(void)"), VoidType)

    def test_symbols_and_eq(self):
        assert run_source("(eq? 'a 'a)") is True
        assert run_source("(eq? 'a 'b)") is False

    def test_equal_structural(self):
        assert run_source("(equal? '(1 (2)) (list 1 (list 2)))") is True

    def test_procedure_predicate(self):
        assert run_source("(procedure? (lambda (x) x))") is True
        assert run_source("(procedure? 3)") is False

    def test_booleans_not_numbers(self):
        assert run_source("(eq? #t 1)") is False
        assert run_source("(number? #t)") is False


class TestArithmetic:
    def test_variadic_plus(self):
        assert run_source("(+)") == 0
        assert run_source("(+ 1 2 3 4)") == 10

    def test_unary_minus(self):
        assert run_source("(- 5)") == -5

    def test_quotient_truncates_toward_zero(self):
        assert run_source("(quotient 7 2)") == 3
        assert run_source("(quotient -7 2)") == -3

    def test_remainder_sign(self):
        assert run_source("(remainder -7 2)") == -1

    def test_modulo_sign(self):
        assert run_source("(modulo -7 2)") == 1

    def test_chained_comparison(self):
        assert run_source("(< 1 2 3)") is True
        assert run_source("(< 1 3 2)") is False

    def test_division_by_zero(self):
        with pytest.raises(EvaluationError):
            run_source("(quotient 1 0)")

    def test_type_error(self):
        with pytest.raises(EvaluationError):
            run_source("(+ 1 'a)")


class TestStrings:
    def test_string_append(self):
        assert run_source('(string-append "a" "b" "c")') == "abc"

    def test_symbol_to_string(self):
        assert run_source("(symbol->string 'hello)") == "hello"

    def test_number_to_string(self):
        assert run_source("(number->string -3)") == "-3"

    def test_string_equal(self):
        assert run_source('(string=? "x" "x")') is True


class TestErrors:
    def test_unbound_variable(self):
        with pytest.raises(UnboundVariableError):
            run_source("nope")

    def test_apply_non_procedure(self):
        with pytest.raises(EvaluationError):
            run_source("(1 2)")

    def test_arity_mismatch(self):
        with pytest.raises(EvaluationError):
            run_source("((lambda (x) x) 1 2)")

    def test_user_error(self):
        with pytest.raises(SchemeUserError):
            run_source("(error 'boom 42)")

    def test_fuel_exhaustion(self):
        source = "(define (loop) (loop)) (loop)"
        with pytest.raises(FuelExhausted):
            run_source(source, fuel=1000)

    def test_car_of_non_pair(self):
        with pytest.raises(EvaluationError):
            run_source("(car 5)")


class TestLexicalScope:
    def test_closure_over_let(self):
        source = """
        (define (make) (let ((n 10)) (lambda (d) (+ n d))))
        ((make) 5)
        """
        assert run_source(source) == 15

    def test_shadowing(self):
        assert run_source(
            "((lambda (x) ((lambda (x) x) 2)) 1)") == 2

    def test_letrec_closures_share_env(self):
        source = """
        (letrec ((ping (lambda (n) (if (= n 0) 'ping (pong (- n 1)))))
                 (pong (lambda (n) (if (= n 0) 'pong (ping (- n 1))))))
          (ping 5))
        """
        assert str(run_source(source)) == "pong"
