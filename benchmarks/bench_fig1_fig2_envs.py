"""E1/E2 — Figures 1 and 2: O(N+M) vs O(N·M) environments.

The same program in object-oriented form (explicit closure classes)
and functional form (implicit closures), analyzed by the same 1-CFA
specification:

* OO: the analysis computes a number of abstract environments (method
  contexts + abstract objects) **linear** in N+M;
* functional: the inner "baz" lambda is analyzed in exactly **N·M**
  abstract environments.

Run as benchmarks (times the two analyses at N = M = 8)::

    pytest benchmarks/bench_fig1_fig2_envs.py --benchmark-only

Run standalone for the sweep table::

    python benchmarks/bench_fig1_fig2_envs.py
"""

from __future__ import annotations

import pytest

from repro.analysis import analyze_kcfa, analyze_mcfa
from repro.fj import analyze_fj_kcfa, parse_fj
from repro.generators.paradox import (
    find_cxy_lambda, paradox_fj_source, paradox_functional_program,
)
from repro.metrics.timing import format_table

SWEEP = ((2, 2), (4, 4), (4, 8), (8, 8), (8, 16), (16, 16))
BENCH_N = BENCH_M = 8


@pytest.mark.benchmark(group="fig1-fig2")
def test_functional_1cfa(benchmark):
    program = paradox_functional_program(BENCH_N, BENCH_M)
    result = benchmark(lambda: analyze_kcfa(program, 1))
    cxy = find_cxy_lambda(program)
    assert result.environment_count(cxy) == BENCH_N * BENCH_M


@pytest.mark.benchmark(group="fig1-fig2")
def test_oo_1cfa(benchmark):
    program = parse_fj(paradox_fj_source(BENCH_N, BENCH_M),
                       entry_method="caller")
    result = benchmark(lambda: analyze_fj_kcfa(program, 1))
    assert result.total_environments() == 3 * (BENCH_N + BENCH_M) + 1


@pytest.mark.benchmark(group="fig1-fig2")
def test_functional_mcfa(benchmark):
    program = paradox_functional_program(BENCH_N, BENCH_M)
    result = benchmark(lambda: analyze_mcfa(program, 1))
    cxy = find_cxy_lambda(program)
    assert result.environment_count(cxy) <= 2


def generate_table():
    headers = ["N", "M", "N+M", "N*M", "OO k=1 envs",
               "fun k=1 cxy-envs", "fun m=1 cxy-envs"]
    rows = []
    for n, m in SWEEP:
        fun_program = paradox_functional_program(n, m)
        cxy = find_cxy_lambda(fun_program)
        fun_k1 = analyze_kcfa(fun_program, 1)
        fun_m1 = analyze_mcfa(fun_program, 1)
        oo_program = parse_fj(paradox_fj_source(n, m),
                              entry_method="caller")
        oo_k1 = analyze_fj_kcfa(oo_program, 1)
        rows.append([
            str(n), str(m), str(n + m), str(n * m),
            str(oo_k1.total_environments()),
            str(fun_k1.environment_count(cxy)),
            str(fun_m1.environment_count(cxy)),
        ])
    return headers, rows


def main():
    print("Figure 1 vs Figure 2: environments computed by 1-CFA for "
          "the same program,\nOO (explicit closures) vs functional "
          "(implicit closures)\n")
    headers, rows = generate_table()
    print(format_table(headers, rows))
    print("\nOO grows linearly in N+M; functional 1-CFA computes "
          "exactly N*M environments\nfor the inner lambda; m-CFA "
          "(flat environments) collapses it to O(1).")


if __name__ == "__main__":
    main()
