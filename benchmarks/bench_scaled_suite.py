"""E5 at paper scale — the §6.2 table on scaled suite programs.

The paper's benchmark files reached thousands of terms; this harness
replays the precision/speed comparison on honestly scaled versions of
our suite (every copy reachable and analyzed; see
:mod:`repro.benchsuite.scaling`), pushing term counts into the same
range and letting the k-CFA vs m-CFA cost gap widen the way the paper
reports.

Run as benchmarks::

    pytest benchmarks/bench_scaled_suite.py --benchmark-only

Standalone::

    python benchmarks/bench_scaled_suite.py [copies]
"""

from __future__ import annotations

import sys

import pytest

from repro.analysis import (
    analyze_kcfa, analyze_mcfa, analyze_poly_kcfa, analyze_zerocfa,
)
from repro.benchsuite.scaling import scaled_program
from repro.metrics.timing import format_cell, format_table, timed_cell

SCALES = {"eta": 4, "map": 4, "regex": 3, "interp": 3}

_PROGRAMS = {name: scaled_program(name, copies)
             for name, copies in SCALES.items()}

_ANALYSES = {
    "k1": lambda program: analyze_kcfa(program, 1),
    "m1": lambda program: analyze_mcfa(program, 1),
    "poly1": lambda program: analyze_poly_kcfa(program, 1),
    "k0": analyze_zerocfa,
}


@pytest.mark.parametrize("name", list(_PROGRAMS))
@pytest.mark.parametrize("analysis", ["m1", "k0"])
def test_scaled_cell(benchmark, name, analysis):
    # only the fast analyses run under pytest-benchmark's repetition;
    # the standalone table includes k=1 with a single timed run.
    benchmark.group = f"scaled-{name}"
    program = _PROGRAMS[name]
    result = benchmark(lambda: _ANALYSES[analysis](program))
    assert result.halt_values


def generate_table(copies_override: int | None = None,
                   timeout: float = 120.0):
    headers = ["Prog", "copies", "Terms", "k=1", "m=1", "poly,k=1",
               "k=0"]
    rows = []
    for name, default_copies in SCALES.items():
        copies = copies_override or default_copies
        program = scaled_program(name, copies)
        row = [name, str(copies), str(program.term_count())]
        for analysis_name in ("k1", "m1", "poly1", "k0"):
            analyze = _ANALYSES[analysis_name]
            cell = timed_cell(
                lambda budget, fn=analyze, p=program: fn(p), timeout)
            inlinings = "-"
            if cell.payload is not None:
                inlinings = str(cell.payload.supported_inlinings())
            row.append(f"{format_cell(cell, epsilon=0.05)} "
                       f"{inlinings}")
        rows.append(row)
    return headers, rows


def main():
    copies = int(sys.argv[1]) if len(sys.argv) > 1 else None
    print("Scaled §6.2 table (cell = time inlinings):\n")
    headers, rows = generate_table(copies)
    print(format_table(headers, rows))


if __name__ == "__main__":
    main()
