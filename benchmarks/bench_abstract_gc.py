"""E9 (extension) — abstract garbage collection, §8's future work.

The paper closes by hypothesizing that ΓCFA's abstract garbage
collection would carry over the bridge to OO analysis "with benefits
for speed and precision".  This harness measures both directions:

* functional: 0CFA vs 0CFA+GC on the sequential-rebinding program —
  collection turns {1, 2} into the exact {2};
* OO: FJ 0CFA vs FJ 0CFA+GC on the receiver-polymorphic identity —
  collection turns {A, B} into the exact {B};
* state-count effect of collection on loopy programs.

Run as benchmarks::

    pytest benchmarks/bench_abstract_gc.py --benchmark-only

Standalone::

    python benchmarks/bench_abstract_gc.py
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    AConst, analyze_kcfa, analyze_kcfa_gc, analyze_kcfa_naive,
)
from repro.fj import analyze_fj_kcfa, parse_fj
from repro.fj.examples import OO_IDENTITY
from repro.fj.gc import analyze_fj_kcfa_gc
from repro.metrics.timing import format_table
from repro.scheme.cps_transform import compile_program

REBIND = "(define (id x) x) (id 1) (id 2)"
LOOPY = """
(define (iter n f) (if (= n 0) (f 0) (iter (- n 1) f)))
(iter 3 (lambda (x) x))
"""

_REBIND = compile_program(REBIND)
_LOOPY = compile_program(LOOPY)
_OO = parse_fj(OO_IDENTITY)


@pytest.mark.benchmark(group="gc-functional")
def test_zerocfa_plain(benchmark):
    result = benchmark(lambda: analyze_kcfa(_REBIND, 0))
    assert result.halt_values == {AConst(1), AConst(2)}


@pytest.mark.benchmark(group="gc-functional")
def test_zerocfa_gc(benchmark):
    result = benchmark(lambda: analyze_kcfa_gc(_REBIND, 0))
    assert result.halt_values == {AConst(2)}  # the precision win


@pytest.mark.benchmark(group="gc-loopy")
def test_naive_loopy(benchmark):
    result = benchmark(lambda: analyze_kcfa_naive(_LOOPY, 1))
    assert result.state_count > 0


@pytest.mark.benchmark(group="gc-loopy")
def test_gc_loopy(benchmark):
    result = benchmark(lambda: analyze_kcfa_gc(_LOOPY, 1))
    assert result.state_count > 0


@pytest.mark.benchmark(group="gc-fj")
def test_fj_plain(benchmark):
    result = benchmark(lambda: analyze_fj_kcfa(_OO, 0))
    assert {o.classname for o in result.halt_values} == {"A", "B"}


@pytest.mark.benchmark(group="gc-fj")
def test_fj_gc(benchmark):
    result = benchmark(lambda: analyze_fj_kcfa_gc(_OO, 0))
    assert {o.classname for o in result.halt_values} == {"B"}


def generate_table():
    headers = ["experiment", "plain result", "+GC result",
               "plain states", "+GC states"]
    plain_fun = analyze_kcfa_naive(_REBIND, 0)
    gc_fun = analyze_kcfa_gc(_REBIND, 0)
    plain_loop = analyze_kcfa_naive(_LOOPY, 1)
    gc_loop = analyze_kcfa_gc(_LOOPY, 1)
    plain_fj = analyze_fj_kcfa(_OO, 0)
    gc_fj = analyze_fj_kcfa_gc(_OO, 0)

    def show(values):
        return "{" + ", ".join(sorted(
            getattr(v, "classname", repr(v)) for v in values)) + "}"

    rows = [
        ["fun rebinding (k=0)", show(plain_fun.halt_values),
         show(gc_fun.halt_values), str(plain_fun.state_count),
         str(gc_fun.state_count)],
        ["fun loop (k=1)", show(plain_loop.halt_values),
         show(gc_loop.halt_values), str(plain_loop.state_count),
         str(gc_loop.state_count)],
        ["FJ identity (k=0)", show(plain_fj.halt_values),
         show(gc_fj.halt_values), str(len(plain_fj.configs)),
         str(len(gc_fj.configs))],
    ]
    return headers, rows


def main():
    print("Abstract garbage collection (the paper's §8 hypothesis, "
          "implemented):\n")
    headers, rows = generate_table()
    print(format_table(headers, rows))
    print("\nCollecting dead bindings before re-binding gives exact "
          "answers where the\nuncollected analyses merge — on both "
          "sides of the functional/OO bridge.")


if __name__ == "__main__":
    main()
