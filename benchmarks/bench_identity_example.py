"""E6 — the §6 identity / do-something example.

Without the intervening call every context-sensitive analysis reports
that the program returns exactly ``4``.  Adding a seemingly innocuous
``(do-something)`` call to the identity's body makes **naive
polynomial 1-CFA** (flat environments + last-1-call-site contexts)
degrade to 0CFA's answer {3, 4}, while k = 1 and m = 1 still answer
{4} — the last-k-call-sites window rotated, the top-m-frames one did
not.

Run as benchmarks::

    pytest benchmarks/bench_identity_example.py --benchmark-only

Run standalone for the flow-set report::

    python benchmarks/bench_identity_example.py
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    AConst, analyze_kcfa, analyze_mcfa, analyze_poly_kcfa,
    analyze_zerocfa,
)
from repro.metrics.timing import format_table
from repro.scheme.cps_transform import compile_program

PLAIN = """
(define (identity x) x)
(identity 3)
(identity 4)
"""

PERTURBED = """
(define (do-something) 42)
(define (identity x) (do-something) x)
(identity 3)
(identity 4)
"""

ANALYSES = {
    "k=1": lambda program: analyze_kcfa(program, 1),
    "m=1": lambda program: analyze_mcfa(program, 1),
    "poly,k=1": lambda program: analyze_poly_kcfa(program, 1),
    "k=0": analyze_zerocfa,
}

_PLAIN = compile_program(PLAIN)
_PERTURBED = compile_program(PERTURBED)


@pytest.mark.parametrize("analysis", list(ANALYSES))
def test_plain(benchmark, analysis):
    benchmark.group = "identity-plain"
    result = benchmark(lambda: ANALYSES[analysis](_PLAIN))
    if analysis != "k=0":
        assert result.halt_values == {AConst(4)}


@pytest.mark.parametrize("analysis", list(ANALYSES))
def test_perturbed(benchmark, analysis):
    benchmark.group = "identity-perturbed"
    result = benchmark(lambda: ANALYSES[analysis](_PERTURBED))
    if analysis in ("k=1", "m=1"):
        assert result.halt_values == {AConst(4)}
    else:
        assert result.halt_values == {AConst(3), AConst(4)}


def _show(values):
    return "{" + ", ".join(sorted(repr(v) for v in values)) + "}"


def main():
    headers = ["analysis", "plain returns", "with (do-something)"]
    rows = []
    for name, analyze in ANALYSES.items():
        rows.append([
            name,
            _show(analyze(_PLAIN).halt_values),
            _show(analyze(_PERTURBED).halt_values),
        ])
    print("The §6 example: what does the program return?\n")
    print(format_table(headers, rows))
    print("\nNaive polynomial 1-CFA degenerates to 0CFA once any call "
          "intervenes;\nm-CFA (top-m-frames) matches k-CFA.")


if __name__ == "__main__":
    main()
