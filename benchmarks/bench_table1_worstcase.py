"""E4 — the §6.1.1 worst-case table.

Regenerates::

    Terms   k=1     m=1     poly,k=1   k=0
    ...     46 s    ϵ       2 s        ϵ
    ...     ∞       3 s     5 s        2 s

on Van Horn–Mairson terms.  Absolute numbers differ from the paper's
2 GHz machine; the *shape* — k=1 exploding orders of magnitude before
every flat-environment analysis — is the reproduction target.

Run as a benchmark suite::

    pytest benchmarks/bench_table1_worstcase.py --benchmark-only

Run standalone to print the paper-style table (with timeout cells)::

    python benchmarks/bench_table1_worstcase.py [timeout-seconds]
"""

from __future__ import annotations

import sys

import pytest

from repro.analysis import (
    analyze_kcfa, analyze_mcfa, analyze_poly_kcfa, analyze_zerocfa,
)
from repro.generators.worstcase import worst_case_program
from repro.metrics.timing import format_cell, format_table, timed_cell

#: Depth used for the pytest-benchmark comparison: large enough that
#: k=1 is visibly slower, small enough that it still finishes.
BENCH_DEPTH = 9

#: Depths for the standalone paper-style table (sizes roughly double
#: the k-CFA work per row, like the paper's term-count column).
TABLE_DEPTHS = (4, 6, 8, 10, 12, 14, 16)


@pytest.fixture(scope="module")
def program():
    return worst_case_program(BENCH_DEPTH)


@pytest.mark.benchmark(group="table1-worstcase")
def test_kcfa_k1(benchmark, program):
    result = benchmark(lambda: analyze_kcfa(program, 1))
    assert result.config_count > 0


@pytest.mark.benchmark(group="table1-worstcase")
def test_mcfa_m1(benchmark, program):
    result = benchmark(lambda: analyze_mcfa(program, 1))
    assert result.config_count > 0


@pytest.mark.benchmark(group="table1-worstcase")
def test_poly_k1(benchmark, program):
    result = benchmark(lambda: analyze_poly_kcfa(program, 1))
    assert result.config_count > 0


@pytest.mark.benchmark(group="table1-worstcase")
def test_zerocfa(benchmark, program):
    result = benchmark(lambda: analyze_zerocfa(program))
    assert result.config_count > 0


def generate_table(depths=TABLE_DEPTHS, timeout: float = 10.0):
    """Compute the full table; returns (headers, rows)."""
    headers = ["Terms", "k = 1", "m = 1", "poly., k=1", "k = 0"]
    analyses = [
        lambda p: (lambda budget: analyze_kcfa(p, 1, budget)),
        lambda p: (lambda budget: analyze_mcfa(p, 1, budget)),
        lambda p: (lambda budget: analyze_poly_kcfa(p, 1, budget)),
        lambda p: (lambda budget: analyze_zerocfa(p, budget)),
    ]
    rows = []
    for depth in depths:
        program = worst_case_program(depth)
        row = [str(program.term_count())]
        for make in analyses:
            cell = timed_cell(make(program), timeout)
            row.append(format_cell(cell))
        rows.append(row)
    return headers, rows


def main():
    timeout = float(sys.argv[1]) if len(sys.argv) > 1 else 10.0
    print(f"Worst-case table (timeout {timeout:.0f}s per cell); "
          "∞ = timed out, ϵ = under a second\n")
    headers, rows = generate_table(timeout=timeout)
    print(format_table(headers, rows))


if __name__ == "__main__":
    main()
