"""E3 — store ablation: naive state-space (§3.6) vs single-threaded
store (§3.7), plus the lattice-height accounting.

The naive engine carries a store in every abstract state; Shivers's
optimization widens all stores into one.  Even at k = 0 the naive
system-space is "deeply exponential" while the single-threaded lattice
height is quadratic — this harness measures the gap empirically and
prints the closed-form bounds.

Run as benchmarks::

    pytest benchmarks/bench_ablation_store.py --benchmark-only

Standalone::

    python benchmarks/bench_ablation_store.py
"""

from __future__ import annotations

import pytest

from repro.analysis import analyze_kcfa, analyze_kcfa_naive
from repro.metrics.complexity import (
    bits, kcfa_lattice_height, kcfa_naive_state_space,
    mcfa_lattice_height,
)
from repro.metrics.timing import format_table
from repro.scheme.cps_transform import compile_program

SOURCES = {
    # the store grows across loop iterations, so the naive engine
    # re-explores each configuration once per store version
    "wrap-loop": """
        (define (iter n f)
          (if (= n 0) f (iter (- n 1) (lambda (x) (f x)))))
        ((iter 3 (lambda (y) y)) 5)
    """,
    # both branches are abstractly possible: flow sets grow along
    # two paths and the rejoin multiplies naive states
    "branchy": """
        (define (pick b) (if b (lambda (p) p) (lambda (q) q)))
        (define (use f) (f 1))
        (cons (use (pick (= 1 1))) (use (pick (= 1 2))))
    """,
    "accum": """
        (define (rep n acc)
          (if (= n 0) acc (rep (- n 1) (cons n acc))))
        (car (rep 4 '()))
    """,
}

_PROGRAMS = {name: compile_program(source)
             for name, source in SOURCES.items()}


@pytest.mark.parametrize("name", list(_PROGRAMS))
def test_single_threaded_store(benchmark, name):
    benchmark.group = f"store-ablation-{name}"
    program = _PROGRAMS[name]
    result = benchmark(lambda: analyze_kcfa(program, 0))
    assert result.halt_values


@pytest.mark.parametrize("name", list(_PROGRAMS))
def test_naive_state_space(benchmark, name):
    benchmark.group = f"store-ablation-{name}"
    program = _PROGRAMS[name]
    result = benchmark(lambda: analyze_kcfa_naive(program, 0))
    assert result.halt_values


def generate_table():
    headers = ["program", "fast steps", "naive steps", "naive states",
               "h(k-CFA) bits", "h(m-CFA) bits", "naive-space bits"]
    rows = []
    for name, program in _PROGRAMS.items():
        fast = analyze_kcfa(program, 1)
        naive = analyze_kcfa_naive(program, 1)
        rows.append([
            name,
            str(fast.steps),
            str(naive.steps),
            str(naive.state_count),
            str(bits(kcfa_lattice_height(program, 1))),
            str(bits(mcfa_lattice_height(program, 1))),
            str(bits(kcfa_naive_state_space(program, 1))),
        ])
    return headers, rows


def main():
    print("Store ablation (k = 1): naive reachable-states engine vs "
          "single-threaded store,\nplus closed-form lattice sizes "
          "(log2 scale)\n")
    headers, rows = generate_table()
    print(format_table(headers, rows))


if __name__ == "__main__":
    main()
