#!/usr/bin/env python
"""Stress the analysis service: concurrent clients vs. the fleet.

A thin wrapper over ``python -m repro stress`` (the harness itself
lives in :mod:`repro.service.stress`), kept under ``benchmarks/`` so
the load-test entry point sits next to the paper-table generators::

    PYTHONPATH=src python benchmarks/stress_service.py --clients 1000

All flags are those of the ``stress`` subcommand; see
``docs/cli.md``.  Exit status is non-zero on any dropped, duplicated
or mismatched result — loss is a failure, backpressure is not.
"""

import sys


def main(argv=None) -> int:
    from repro.__main__ import main as repro_main
    return repro_main(["stress", *(sys.argv[1:] if argv is None
                                   else argv)])


if __name__ == "__main__":
    raise SystemExit(main())
