"""Serial vs. parallel batch runner on the scaled §6.2 matrix.

Runs the same benchmark matrix twice through
:mod:`repro.benchsuite.runner` — once in-process (serial) and once
fanned across all cores — and reports the wall-clock speedup.  On a
multi-core machine the parallel run should approach
``min(jobs, tasks)``× for matrices whose cells are comparably sized;
this harness is how that perf claim is checked from this PR forward.

Standalone::

    python benchmarks/bench_parallel_matrix.py [copies] [jobs]
"""

from __future__ import annotations

import os
import sys

from repro.benchsuite.runner import build_matrix, run_batch
from repro.metrics.timing import format_table

PROGRAMS = ("eta", "map", "regex", "interp")
ANALYSES = ("kcfa", "mcfa", "poly", "zero")
CONTEXTS = (0, 1)


def generate_table(copies: int = 2, jobs: int | None = None):
    jobs = jobs or os.cpu_count() or 1
    tasks = build_matrix(PROGRAMS, ANALYSES, CONTEXTS, copies=copies,
                         timeout=120.0)
    serial = run_batch(tasks, serial=True)
    parallel = run_batch(tasks, jobs=jobs)
    headers = ["mode", "jobs", "tasks", "ok", "wall s", "speedup"]
    rows = []
    for label, report in (("serial", serial), ("parallel", parallel)):
        speedup = serial.elapsed / report.elapsed \
            if report.elapsed else float("inf")
        rows.append([label, str(report.jobs), str(len(report.rows)),
                     str(len(report.ok_rows)),
                     f"{report.elapsed:.2f}", f"{speedup:.2f}x"])
    return headers, rows


def main():
    copies = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else None
    print(f"Parallel batch runner on the scaled suite "
          f"(copies={copies}):\n")
    headers, rows = generate_table(copies, jobs)
    print(format_table(headers, rows))


if __name__ == "__main__":
    main()
