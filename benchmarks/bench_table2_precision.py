"""E5 — the §6.2 precision/speed table.

For every suite program and every analysis: run time plus the number
of supported inlinings.  The qualitative reproduction targets:

* m = 1 matches k = 1's inlining count on **every** program, at lower
  cost;
* naive polynomial k = 1 drops to the 0CFA count on the programs with
  context-rotating intervening calls (eta, scm2java, scm2c);
* 0CFA is always the cheapest and never more precise.

Run as benchmarks::

    pytest benchmarks/bench_table2_precision.py --benchmark-only

Run standalone for the paper-style table::

    python benchmarks/bench_table2_precision.py
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    analyze_kcfa, analyze_mcfa, analyze_poly_kcfa, analyze_zerocfa,
)
from repro.benchsuite import SUITE
from repro.metrics.precision import precision_row, standard_analyses
from repro.metrics.timing import format_cell, format_table

_ANALYSES = {
    "k1": lambda program: analyze_kcfa(program, 1),
    "m1": lambda program: analyze_mcfa(program, 1),
    "poly1": lambda program: analyze_poly_kcfa(program, 1),
    "k0": analyze_zerocfa,
}

_PROGRAMS = {bench.name: bench.compile() for bench in SUITE}


@pytest.mark.parametrize("bench_name", list(_PROGRAMS))
@pytest.mark.parametrize("analysis", list(_ANALYSES))
def test_suite_cell(benchmark, bench_name, analysis):
    program = _PROGRAMS[bench_name]
    analyze = _ANALYSES[analysis]
    benchmark.group = f"table2-{bench_name}"
    result = benchmark(lambda: analyze(program))
    assert result.halt_values


def generate_table(timeout: float = 60.0):
    headers = ["Prog", "Terms", "k=1", "m=1", "poly,k=1", "k=0"]
    rows = []
    for bench in SUITE:
        program = _PROGRAMS[bench.name]
        row = [bench.name, str(program.term_count())]
        cells = precision_row(program, standard_analyses(), timeout)
        for name in ("k=1", "m=1", "poly,k=1", "k=0"):
            cell = cells[name]
            inlinings = cell.inlinings
            shown = "-" if inlinings is None else str(inlinings)
            row.append(f"{format_cell(cell.cell)} {shown}")
        rows.append(row)
    return headers, rows


def main():
    print("Precision table: each cell is `time inlinings` "
          "(ϵ = under a second, ∞ = timeout)\n")
    headers, rows = generate_table()
    print(format_table(headers, rows))


if __name__ == "__main__":
    main()
