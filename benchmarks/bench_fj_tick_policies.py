"""Ablation (§4.5) — FJ ticking policies: Shivers-faithful
per-statement ticking vs OO-conventional invocation-only ticking with
caller-context restore.

The paper notes these variations are orthogonal to the paradox; this
harness verifies that empirically (both policies scale the same way)
and measures their relative cost.

Run as benchmarks::

    pytest benchmarks/bench_fj_tick_policies.py --benchmark-only

Standalone::

    python benchmarks/bench_fj_tick_policies.py
"""

from __future__ import annotations

import pytest

from repro.fj import analyze_fj_kcfa, parse_fj
from repro.fj.examples import ALL_EXAMPLES
from repro.generators.paradox import paradox_fj_source
from repro.metrics.timing import format_table

_PROGRAMS = {name: parse_fj(source)
             for name, source in ALL_EXAMPLES.items()}
_PROGRAMS["paradox-8-8"] = parse_fj(paradox_fj_source(8, 8),
                                    entry_method="caller")


@pytest.mark.parametrize("name", list(_PROGRAMS))
@pytest.mark.parametrize("policy", ["invocation", "statement"])
def test_policy_cell(benchmark, name, policy):
    benchmark.group = f"fj-tick-{name}"
    program = _PROGRAMS[name]
    result = benchmark(
        lambda: analyze_fj_kcfa(program, 1, tick_policy=policy))
    assert result.steps > 0


def generate_table():
    headers = ["program", "invocation steps", "statement steps",
               "invocation objects", "statement objects"]
    rows = []
    for name, program in _PROGRAMS.items():
        invocation = analyze_fj_kcfa(program, 1,
                                     tick_policy="invocation")
        statement = analyze_fj_kcfa(program, 1,
                                    tick_policy="statement")
        rows.append([
            name, str(invocation.steps), str(statement.steps),
            str(len(invocation.objects)), str(len(statement.objects)),
        ])
    return headers, rows


def main():
    print("§4.5 ablation: per-statement vs invocation-only ticking "
          "(both k = 1)\n")
    headers, rows = generate_table()
    print(format_table(headers, rows))
    print("\nBoth stay polynomial — the §4.5 variations are "
          "orthogonal to the paradox.\nInvocation-only ticking gives "
          "the context-sensitive heap of Figure 1;\nper-statement "
          "ticking contexts degrade to allocation sites.")


if __name__ == "__main__":
    main()
