"""E7 — the paradox in wall-clock form: OO k-CFA is polynomial,
functional k-CFA is exponential, on the *same* closure chain.

The Van Horn–Mairson chain is generated in two forms: implicit
closures (CPS lambdas) and explicit closure classes (FJ constructors
copying every captured variable at once).  Both are analyzed by the
same k = 1 specification.

Run as benchmarks::

    pytest benchmarks/bench_fj_vs_fun.py --benchmark-only

Standalone scaling table::

    python benchmarks/bench_fj_vs_fun.py
"""

from __future__ import annotations

import pytest

from repro.analysis import analyze_kcfa
from repro.fj import analyze_fj_kcfa, analyze_fj_poly, parse_fj
from repro.generators.worstcase import (
    worst_case_fj_source, worst_case_program,
)
from repro.metrics.timing import format_table

BENCH_DEPTH = 8
TABLE_DEPTHS = (3, 5, 7, 9, 11)


@pytest.mark.benchmark(group="fj-vs-fun")
def test_functional_k1(benchmark):
    program = worst_case_program(BENCH_DEPTH)
    result = benchmark(lambda: analyze_kcfa(program, 1))
    assert result.config_count > 2 ** BENCH_DEPTH  # exponential

@pytest.mark.benchmark(group="fj-vs-fun")
def test_fj_k1(benchmark):
    program = parse_fj(worst_case_fj_source(BENCH_DEPTH),
                       entry_method="run")
    result = benchmark(lambda: analyze_fj_kcfa(program, 1))
    assert len(result.configs) < 100 * BENCH_DEPTH  # polynomial


@pytest.mark.benchmark(group="fj-vs-fun")
def test_fj_poly_k1(benchmark):
    program = parse_fj(worst_case_fj_source(BENCH_DEPTH),
                       entry_method="run")
    result = benchmark(lambda: analyze_fj_poly(program, 1))
    assert len(result.configs) < 100 * BENCH_DEPTH


def generate_table():
    headers = ["depth", "fun k=1 steps", "fun k=1 configs",
               "FJ k=1 steps", "FJ k=1 configs", "FJ poly steps"]
    rows = []
    for depth in TABLE_DEPTHS:
        fun = analyze_kcfa(worst_case_program(depth), 1)
        fj_program = parse_fj(worst_case_fj_source(depth),
                              entry_method="run")
        fj = analyze_fj_kcfa(fj_program, 1)
        fj_poly = analyze_fj_poly(fj_program, 1)
        rows.append([
            str(depth), str(fun.steps), str(fun.config_count),
            str(fj.steps), str(len(fj.configs)), str(fj_poly.steps),
        ])
    return headers, rows


def main():
    print("The same closure chain, functional vs object-oriented, "
          "under the same 1-CFA:\n")
    headers, rows = generate_table()
    print(format_table(headers, rows))
    print("\nFunctional work doubles per level (exponential); OO work "
          "grows by a constant\nper level (polynomial) — the paradox, "
          "measured.")


if __name__ == "__main__":
    main()
